//! The event-driven I/O reactor: one thread multiplexing every
//! connection through `epoll`.
//!
//! Thread-per-connection spends an OS thread and stack per client; this
//! module replaces that with nonblocking connection state machines
//! driven by readiness events, so a *fixed* reactor thread serves
//! hundreds of sockets. Each connection is:
//!
//! ```text
//!   accept ──▶ read-ready: bytes ──▶ FrameDecoder ──▶ handler.on_frame
//!                                                         │
//!           handler replies inline (WriteQueue) ◀─────────┤
//!           or asynchronously via ReactorHandle ◀── batch worker thread
//!                                                     (eventfd doorbell)
//!   write-ready: WriteQueue::flush_into ──▶ drained? drop EPOLLOUT
//!   no progress before the idle deadline ──▶ close
//! ```
//!
//! The pieces are exactly the blocking path's, re-entered incrementally:
//! [`FrameDecoder`] already consumes arbitrary byte chunks, and
//! [`WriteQueue`] is its write-side twin for partial writes. Protocol
//! logic lives behind [`FrameHandler`]; the reactor knows framing,
//! readiness, deadlines, and nothing about message types.
//!
//! Interest re-registration is per-state: `EPOLLIN` while the handler
//! still wants frames, `EPOLLOUT` exactly while the write queue holds
//! bytes, neither once a close is pending flush. Cross-thread
//! completions (a batch worker finishing a classification) land in a
//! mutex-guarded queue and ring an `eventfd` doorbell, which is itself
//! just another fd in the epoll set.
//!
//! This file is Linux-only (see [`sys`](crate::sys)); other platforms
//! keep the portable thread-per-connection path.

use crate::frame::{FrameDecoder, NetError, WriteQueue};
use crate::sys::{epoll_event, Epoll, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use a4nn_error::A4nnError;
use a4nn_metrics::{names, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one reactor connection; stable for the connection's life,
/// never reused within one reactor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u64);

impl Token {
    /// The raw token value (diagnostics).
    pub fn value(&self) -> u64 {
        self.0
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_DOORBELL: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Why a connection left the reactor.
#[derive(Debug)]
pub enum CloseReason {
    /// The peer closed cleanly at a frame boundary.
    PeerClosed,
    /// No read/write progress before the idle deadline — the
    /// slow/stalled-client guard that replaces blocking read timeouts.
    IdleDeadline,
    /// The stream carried a framing or protocol violation.
    Protocol(NetError),
    /// The socket failed.
    Io(String),
    /// The handler asked for the close.
    Requested,
}

/// What the handler wants done with the connection after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerAction {
    /// Keep the session open.
    Continue,
    /// Stop reading, flush queued replies, then close.
    CloseAfterFlush,
    /// Drop the connection immediately (protocol violation).
    CloseNow,
}

/// Protocol logic the reactor drives: one implementation serves every
/// connection, keyed by [`Token`]. All methods run on the reactor
/// thread, so `&mut self` needs no locking.
pub trait FrameHandler {
    /// A connection was accepted. Frames queued on `out` are sent
    /// before any request is read (unused by protocols where the client
    /// speaks first).
    fn on_open(&mut self, token: Token, out: &mut WriteQueue);

    /// One complete, header-validated frame payload arrived.
    fn on_frame(&mut self, token: Token, payload: &[u8], out: &mut WriteQueue) -> HandlerAction;

    /// An asynchronous completion posted through
    /// [`ReactorHandle::complete`] reached the reactor thread. The
    /// default enqueues the bytes verbatim.
    fn on_complete(&mut self, token: Token, frame: Vec<u8>, out: &mut WriteQueue) -> HandlerAction {
        let _ = token;
        out.enqueue(&frame);
        HandlerAction::Continue
    }

    /// The connection is gone; drop any per-connection state.
    fn on_close(&mut self, token: Token, reason: &CloseReason);
}

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Close a connection after this long without read or write
    /// progress. Partial frames, stalled writes, and silent peers all
    /// hit the same deadline.
    pub idle_timeout: Duration,
    /// Sink for reactor metrics (wakeups, ready events, connection
    /// counts, accept→first-byte latency), when observability is wanted.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            idle_timeout: Duration::from_secs(30),
            metrics: None,
        }
    }
}

struct HandleInner {
    completions: Mutex<Vec<(Token, Vec<u8>)>>,
    doorbell: EventFd,
}

/// Cross-thread door into a running reactor: any thread may post an
/// encoded reply frame for a connection; the reactor wakes (eventfd)
/// and routes it through [`FrameHandler::on_complete`].
///
/// Completions for connections that died in the meantime are silently
/// dropped — a dead client cannot be answered, and the handler already
/// saw `on_close`.
#[derive(Clone)]
pub struct ReactorHandle {
    inner: Arc<HandleInner>,
}

impl ReactorHandle {
    /// Post `frame` (already-encoded bytes) for `token` and ring the
    /// doorbell.
    pub fn complete(&self, token: Token, frame: Vec<u8>) {
        self.inner.completions.lock().push((token, frame));
        let _ = self.inner.doorbell.notify();
    }
}

/// One connection's reactor-side state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outq: WriteQueue,
    /// `CloseAfterFlush` was requested: reads stop, the queue drains,
    /// then the socket closes.
    closing: bool,
    /// Last read/write progress — the idle-deadline clock.
    last_progress: Instant,
    accepted_at: Instant,
    seen_first_byte: bool,
    /// The interest set currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn desired_interest(&self) -> u32 {
        let mut events = EPOLLRDHUP;
        if !self.closing {
            events |= EPOLLIN;
        }
        if !self.outq.is_empty() {
            events |= EPOLLOUT;
        }
        events
    }
}

/// The epoll event loop. Create one, share its [`handle`](Self::handle)
/// with whatever threads complete work asynchronously, then [`run`](Self::run).
pub struct Reactor {
    epoll: Epoll,
    handle: ReactorHandle,
    cfg: ReactorConfig,
}

impl Reactor {
    /// Create the epoll instance and the completion doorbell.
    pub fn new(cfg: ReactorConfig) -> Result<Self, A4nnError> {
        let epoll = Epoll::new()
            .map_err(|e| A4nnError::Net(format!("creating the epoll instance: {e}")))?;
        let doorbell = EventFd::new()
            .map_err(|e| A4nnError::Net(format!("creating the reactor doorbell eventfd: {e}")))?;
        Ok(Reactor {
            epoll,
            handle: ReactorHandle {
                inner: Arc::new(HandleInner {
                    completions: Mutex::new(Vec::new()),
                    doorbell,
                }),
            },
            cfg,
        })
    }

    /// The cross-thread completion handle.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    fn observe(&self, name: &str, value: u64) {
        if let Some(m) = &self.cfg.metrics {
            m.observe(name, value);
        }
    }

    fn count(&self, name: &str, n: u64) {
        if let Some(m) = &self.cfg.metrics {
            m.add(name, n);
        }
    }

    /// Accept and multiplex connections until the session budget is
    /// served (`sessions == 0` serves forever). Counting matches the
    /// threaded accept loop: a session is one accepted connection, and
    /// the reactor returns once the budget is accepted *and* every
    /// connection has closed.
    pub fn run<H: FrameHandler>(
        &mut self,
        listener: &TcpListener,
        handler: &mut H,
        sessions: usize,
    ) -> Result<(), A4nnError> {
        listener
            .set_nonblocking(true)
            .map_err(|e| A4nnError::Net(format!("setting the listener nonblocking: {e}")))?;
        self.epoll
            .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .map_err(|e| A4nnError::Net(format!("registering the listener with epoll: {e}")))?;
        self.epoll
            .add(
                self.handle.inner.doorbell.as_raw_fd(),
                EPOLLIN,
                TOKEN_DOORBELL,
            )
            .map_err(|e| A4nnError::Net(format!("registering the doorbell with epoll: {e}")))?;

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut events = vec![epoll_event { events: 0, data: 0 }; 256];
        let mut read_buf = vec![0u8; 64 * 1024];
        let mut next_token = FIRST_CONN_TOKEN;
        let mut accepted = 0usize;
        let mut accepting = true;
        let mut live_peak_exported = 0usize;

        let result = loop {
            if !accepting && conns.is_empty() {
                break Ok(());
            }
            let timeout_ms = nearest_deadline_ms(&conns, self.cfg.idle_timeout);
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(e) => break Err(A4nnError::Net(format!("epoll_wait failed: {e}"))),
            };
            self.count(names::REACTOR_WAKEUPS, 1);
            self.observe(names::REACTOR_READY_EVENTS, n as u64);

            for ev in events.iter().take(n) {
                let token = ev.data;
                let bits = ev.events;
                match token {
                    TOKEN_LISTENER => {
                        if !accepting {
                            continue;
                        }
                        match self.accept_ready(
                            listener,
                            handler,
                            &mut conns,
                            &mut next_token,
                            &mut accepted,
                            sessions,
                        ) {
                            Ok(still_accepting) => {
                                if !still_accepting {
                                    accepting = false;
                                    let _ = self.epoll.delete(listener.as_raw_fd());
                                }
                            }
                            Err(e) => return Err(e),
                        }
                        if conns.len() > live_peak_exported {
                            self.count(
                                names::REACTOR_CONNS_LIVE_PEAK,
                                (conns.len() - live_peak_exported) as u64,
                            );
                            live_peak_exported = conns.len();
                        }
                    }
                    TOKEN_DOORBELL => {
                        self.handle.inner.doorbell.drain();
                        let batch: Vec<(Token, Vec<u8>)> =
                            self.handle.inner.completions.lock().drain(..).collect();
                        for (tok, frame) in batch {
                            let Some(conn) = conns.get_mut(&tok.0) else {
                                // The connection died while its work was
                                // in flight; the reply has no recipient.
                                continue;
                            };
                            let action = handler.on_complete(tok, frame, &mut conn.outq);
                            conn.last_progress = Instant::now();
                            self.after_handler(handler, &mut conns, tok, action);
                        }
                    }
                    t => {
                        let tok = Token(t);
                        if conns.contains_key(&t) {
                            self.conn_ready(handler, &mut conns, tok, bits, &mut read_buf);
                        }
                    }
                }
            }

            // Idle/stall deadlines: no read or write progress for the
            // whole timeout closes the connection, no matter which state
            // it stalled in (partial frame, unflushed reply, silence).
            let now = Instant::now();
            let expired: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| now.duration_since(c.last_progress) >= self.cfg.idle_timeout)
                .map(|(t, _)| *t)
                .collect();
            for t in expired {
                self.count(names::REACTOR_IDLE_CLOSED, 1);
                self.close_conn(handler, &mut conns, Token(t), CloseReason::IdleDeadline);
            }
        };

        // Unregister the doorbell so a later `run` can re-add it.
        let _ = self.epoll.delete(self.handle.inner.doorbell.as_raw_fd());
        if accepting {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        result
    }

    /// Drain the accept backlog. Returns whether the session budget
    /// still has room.
    fn accept_ready<H: FrameHandler>(
        &self,
        listener: &TcpListener,
        handler: &mut H,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
        accepted: &mut usize,
        sessions: usize,
    ) -> Result<bool, A4nnError> {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if let Err(e) = stream.set_nonblocking(true) {
                        eprintln!("a4nn reactor: setting accepted socket nonblocking: {e}");
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = Token(*next_token);
                    *next_token += 1;
                    let mut conn = Conn {
                        stream,
                        decoder: FrameDecoder::new(),
                        outq: WriteQueue::new(),
                        closing: false,
                        last_progress: Instant::now(),
                        accepted_at: Instant::now(),
                        seen_first_byte: false,
                        interest: EPOLLIN | EPOLLRDHUP,
                    };
                    handler.on_open(token, &mut conn.outq);
                    if !conn.outq.is_empty() {
                        // Optimistic flush of any greeting frames.
                        let _ = conn.outq.flush_into(&mut conn.stream);
                        conn.interest = conn.desired_interest();
                    }
                    if let Err(e) = self
                        .epoll
                        .add(conn.stream.as_raw_fd(), conn.interest, token.0)
                    {
                        eprintln!("a4nn reactor: registering accepted socket: {e}");
                        handler.on_close(token, &CloseReason::Io(e.to_string()));
                        continue;
                    }
                    conns.insert(token.0, conn);
                    self.count(names::REACTOR_CONNS_OPENED, 1);
                    *accepted += 1;
                    if sessions != 0 && *accepted >= sessions {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED
                // and friends) must not kill a server that other clients
                // are using.
                Err(e) => {
                    eprintln!("a4nn reactor: accepting connection: {e}");
                    return Ok(true);
                }
            }
        }
    }

    /// Service one connection's readiness bits.
    fn conn_ready<H: FrameHandler>(
        &self,
        handler: &mut H,
        conns: &mut HashMap<u64, Conn>,
        token: Token,
        bits: u32,
        read_buf: &mut [u8],
    ) {
        let readable = bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0;
        let writable = bits & EPOLLOUT != 0;

        if readable {
            if let Some(reason) = self.read_until_blocked(handler, conns, token, read_buf) {
                self.close_conn(handler, conns, token, reason);
                return;
            }
        }
        if let Some(reason) = flush_outbound(conns, token, writable) {
            self.close_conn(handler, conns, token, reason);
            return;
        }
        self.update_interest(conns, token);
    }

    /// Pull bytes until `WouldBlock`, feeding complete frames to the
    /// handler. Returns a close reason when the connection must go.
    fn read_until_blocked<H: FrameHandler>(
        &self,
        handler: &mut H,
        conns: &mut HashMap<u64, Conn>,
        token: Token,
        read_buf: &mut [u8],
    ) -> Option<CloseReason> {
        loop {
            let conn = conns.get_mut(&token.0)?;
            if conn.closing {
                return None;
            }
            match conn.stream.read(read_buf) {
                Ok(0) => {
                    return Some(match conn.decoder.finish() {
                        Ok(()) => CloseReason::PeerClosed,
                        Err(e) => CloseReason::Protocol(e),
                    });
                }
                Ok(got) => {
                    conn.last_progress = Instant::now();
                    if !conn.seen_first_byte {
                        conn.seen_first_byte = true;
                        if let Some(m) = &self.cfg.metrics {
                            m.observe_duration(
                                names::REACTOR_ACCEPT_FIRST_BYTE_US,
                                conn.accepted_at.elapsed().as_secs_f64(),
                            );
                        }
                    }
                    conn.decoder.push(&read_buf[..got]);
                    // Drain every complete frame before reading more, so
                    // a pipelining client cannot grow the decode buffer
                    // past one read chunk plus a partial frame.
                    loop {
                        let conn = conns.get_mut(&token.0)?;
                        match conn.decoder.next_payload() {
                            Ok(Some(payload)) => {
                                let action = handler.on_frame(token, &payload, &mut conn.outq);
                                match action {
                                    HandlerAction::Continue => {}
                                    HandlerAction::CloseAfterFlush => {
                                        conn.closing = true;
                                        break;
                                    }
                                    HandlerAction::CloseNow => {
                                        return Some(CloseReason::Requested);
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(e) => return Some(CloseReason::Protocol(e)),
                        }
                    }
                    if conns.get(&token.0).is_some_and(|c| c.closing) {
                        return None;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return None,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(CloseReason::Io(e.to_string())),
            }
        }
    }

    /// Apply a handler action that arrived outside the read path
    /// (completions): flush, honor closes, re-register interest.
    fn after_handler<H: FrameHandler>(
        &self,
        handler: &mut H,
        conns: &mut HashMap<u64, Conn>,
        token: Token,
        action: HandlerAction,
    ) {
        match action {
            HandlerAction::CloseNow => {
                self.close_conn(handler, conns, token, CloseReason::Requested);
                return;
            }
            HandlerAction::CloseAfterFlush => {
                if let Some(conn) = conns.get_mut(&token.0) {
                    conn.closing = true;
                }
            }
            HandlerAction::Continue => {}
        }
        if let Some(reason) = flush_outbound(conns, token, false) {
            self.close_conn(handler, conns, token, reason);
            return;
        }
        self.update_interest(conns, token);
    }

    /// Re-register the connection's interest set when it changed —
    /// `EPOLLOUT` exactly while bytes are queued, `EPOLLIN` until a
    /// close is pending.
    fn update_interest(&self, conns: &mut HashMap<u64, Conn>, token: Token) {
        if let Some(conn) = conns.get_mut(&token.0) {
            let desired = conn.desired_interest();
            if desired != conn.interest {
                if let Err(e) = self.epoll.modify(conn.stream.as_raw_fd(), desired, token.0) {
                    eprintln!("a4nn reactor: re-registering interest: {e}");
                } else {
                    conn.interest = desired;
                }
            }
        }
    }

    fn close_conn<H: FrameHandler>(
        &self,
        handler: &mut H,
        conns: &mut HashMap<u64, Conn>,
        token: Token,
        reason: CloseReason,
    ) {
        if let Some(conn) = conns.remove(&token.0) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.count(names::REACTOR_CONNS_CLOSED, 1);
            if let CloseReason::Protocol(e) = &reason {
                eprintln!("a4nn reactor: connection ended abnormally: {e}");
            }
            handler.on_close(token, &reason);
            // `conn.stream` drops here, closing the fd.
        }
    }
}

/// Try to drain a connection's write queue. Returns the close reason
/// the caller must apply — `Requested` when a pending close finished
/// flushing, `Io` when the socket failed — or `None` to keep going.
fn flush_outbound(
    conns: &mut HashMap<u64, Conn>,
    token: Token,
    write_ready: bool,
) -> Option<CloseReason> {
    let conn = conns.get_mut(&token.0)?;
    if !write_ready && conn.outq.is_empty() {
        return None;
    }
    match conn.outq.flush_into(&mut conn.stream) {
        Ok(true) if conn.closing => Some(CloseReason::Requested),
        Ok(drained) => {
            if drained || write_ready {
                conn.last_progress = Instant::now();
            }
            None
        }
        Err(e) => Some(CloseReason::Io(e.to_string())),
    }
}

/// Milliseconds until the earliest idle deadline, for `epoll_wait`;
/// `-1` (wait forever) with no connections.
fn nearest_deadline_ms(conns: &HashMap<u64, Conn>, idle: Duration) -> i32 {
    let now = Instant::now();
    conns
        .values()
        .map(|c| {
            let deadline = c.last_progress + idle;
            deadline
                .checked_duration_since(now)
                .map_or(0, |d| d.as_millis().min(i32::MAX as u128) as i32)
        })
        .min()
        // +1 so we wake *after* the deadline passes, not just at it.
        .map_or(-1, |ms| ms.saturating_add(1))
}
