//! The wire format: length-prefixed serde frames with a versioned
//! header.
//!
//! Every message on an `a4nn-net` connection travels as one frame:
//!
//! ```text
//! +----------+-----------+------------+--------------------+
//! | magic    | version   | length     | payload            |
//! | "A4NN"   | u16 BE    | u32 BE     | serde_json bytes   |
//! | 4 bytes  | 2 bytes   | 4 bytes    | `length` bytes     |
//! +----------+-----------+------------+--------------------+
//! ```
//!
//! The codec is deliberately strict: wrong magic, a header version other
//! than [`PROTOCOL_VERSION`], a length above [`MAX_PAYLOAD`], an
//! undecodable payload, and a stream that ends mid-frame are all
//! distinct [`NetError`]s — never panics, never silent truncation. The
//! incremental [`FrameDecoder`] makes the framing independent of how the
//! kernel splits or coalesces reads, which is what the property suite
//! exercises.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// The protocol revision this build speaks. Bumped on any wire-visible
/// change; both the frame header and the `Hello`/`Welcome` handshake
/// carry it, so mismatched builds refuse each other instead of
/// misparsing.
pub const PROTOCOL_VERSION: u16 = 2;

/// Frame preamble, for cheap misdial detection.
pub const MAGIC: [u8; 4] = *b"A4NN";

/// Fixed header size: magic + version + payload length.
pub const HEADER_LEN: usize = 10;

/// Upper bound on one frame's payload (64 MiB) — far above any real
/// message, low enough that a corrupted length field cannot provoke a
/// giant allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Read granularity for payloads in [`read_message`]. The payload buffer
/// grows by at most this much ahead of the bytes actually received, so a
/// peer that announces a huge length but never sends the bytes costs the
/// reader one chunk of memory, not [`MAX_PAYLOAD`].
pub const READ_CHUNK: usize = 64 * 1024;

/// Every way a frame or stream can be malformed. Converted into the
/// workspace's `Net` failure class at the transport boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The stream did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol revision.
    VersionMismatch {
        /// The revision this build speaks.
        ours: u16,
        /// The revision found on the wire.
        theirs: u16,
    },
    /// The header announced a payload above [`MAX_PAYLOAD`].
    FrameTooLarge {
        /// The announced payload length.
        len: u32,
    },
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Where in the frame the bytes ran out.
        context: String,
    },
    /// The payload was not a decodable message.
    Decode(String),
    /// The underlying socket failed (includes read timeouts).
    Io(String),
    /// The peer sent a well-formed message that violates the protocol
    /// state machine (e.g. a `Job` before the handshake).
    Protocol(String),
    /// The peer explicitly refused the handshake.
    Refused(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:?} (expected {MAGIC:?})"),
            NetError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer sent v{theirs}"
            ),
            NetError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
                )
            }
            NetError::Truncated { context } => write!(f, "stream truncated {context}"),
            NetError::Decode(msg) => write!(f, "undecodable frame payload: {msg}"),
            NetError::Io(msg) => write!(f, "socket failure: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Refused(reason) => write!(f, "handshake refused: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<NetError> for a4nn_error::A4nnError {
    fn from(e: NetError) -> Self {
        a4nn_error::A4nnError::Net(e.to_string())
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// Encode one message as a complete frame (header + payload).
pub fn encode<T: Serialize>(msg: &T) -> Result<Vec<u8>, NetError> {
    let payload = serde_json::to_vec(msg).map_err(|e| NetError::Decode(e.to_string()))?;
    if payload.len() as u64 > u64::from(MAX_PAYLOAD) {
        return Err(NetError::FrameTooLarge {
            len: payload.len() as u32,
        });
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Incremental frame parser: push bytes in whatever chunking the socket
/// delivers, pop complete messages. Validation errors are sticky in the
/// sense that the caller should drop the connection — the stream offset
/// is unrecoverable once framing is broken.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Buffer more bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Validate the buffered header and return the full frame length
    /// (header + payload) when the header is complete, `Ok(None)` when
    /// more header bytes are needed.
    fn frame_len(&self) -> Result<Option<usize>, NetError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&self.buf[..4]);
        if magic != MAGIC {
            return Err(NetError::BadMagic(magic));
        }
        let version = u16::from_be_bytes([self.buf[4], self.buf[5]]);
        if version != PROTOCOL_VERSION {
            return Err(NetError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            });
        }
        let len = u32::from_be_bytes([self.buf[6], self.buf[7], self.buf[8], self.buf[9]]);
        if len > MAX_PAYLOAD {
            return Err(NetError::FrameTooLarge { len });
        }
        Ok(Some(HEADER_LEN + len as usize))
    }

    /// Pop the next complete message; `Ok(None)` means more bytes are
    /// needed.
    pub fn next_frame<T: Deserialize>(&mut self) -> Result<Option<T>, NetError> {
        let total = match self.frame_len()? {
            Some(total) if self.buf.len() >= total => total,
            _ => return Ok(None),
        };
        let msg = serde_json::from_slice(&self.buf[HEADER_LEN..total])
            .map_err(|e| NetError::Decode(e.to_string()))?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }

    /// Pop the next complete frame's *raw payload bytes* after header
    /// validation, leaving deserialization to the caller. This is the
    /// reactor's entry point: the event loop validates framing once and
    /// hands the payload to a protocol handler that knows the message
    /// type.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let total = match self.frame_len()? {
            Some(total) if self.buf.len() >= total => total,
            _ => return Ok(None),
        };
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Call when the stream reached clean EOF: leftover buffered bytes
    /// mean the peer died mid-frame.
    pub fn finish(&self) -> Result<(), NetError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(NetError::Truncated {
                context: format!(
                    "with {} byte(s) of an incomplete frame buffered",
                    self.buf.len()
                ),
            })
        }
    }
}

/// Write one message as a frame to a blocking stream.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), NetError> {
    let frame = encode(msg)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one message from a blocking stream. `Ok(None)` is clean EOF at
/// a frame boundary; EOF inside a frame is [`NetError::Truncated`], and
/// a read timeout surfaces as [`NetError::Io`] — the coordinator's
/// heartbeat-deadline mechanism.
pub fn read_message<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(NetError::Truncated {
                    context: format!("after {got} of {HEADER_LEN} header byte(s)"),
                })
            }
            Ok(n) => got += n,
            Err(e) => return Err(e.into()),
        }
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&header[..4]);
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(NetError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let len = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(NetError::FrameTooLarge { len });
    }
    // The length header is untrusted until the payload actually arrives:
    // grow the buffer one bounded chunk at a time instead of
    // preallocating `len` bytes up front, so a hostile or corrupt peer
    // that announces MAX_PAYLOAD but sends nothing cannot force a 64 MiB
    // allocation per frame. This codec fronts public serve connections,
    // not just trusted workers.
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let old = payload.len();
        let take = (len - old).min(READ_CHUNK);
        payload.resize(old + take, 0);
        let mut filled = old;
        while filled < old + take {
            match r.read(&mut payload[filled..old + take]) {
                Ok(0) => {
                    return Err(NetError::Truncated {
                        context: format!("inside a {len}-byte payload after {filled} byte(s)"),
                    })
                }
                Ok(n) => filled += n,
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
    }
    serde_json::from_slice(&payload)
        .map(Some)
        .map_err(|e| NetError::Decode(e.to_string()))
}

/// Buffered outbound bytes for a nonblocking stream — the write-side
/// twin of [`FrameDecoder`].
///
/// A nonblocking socket may accept any prefix of a `write` (including
/// nothing); the queue owns whatever the kernel did not take, so a
/// frame's bytes hit the wire exactly once and in order no matter how
/// the writes are cut. The reactor re-registers write interest exactly
/// while [`pending`](Self::pending) is nonzero.
#[derive(Debug, Default)]
pub struct WriteQueue {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WriteQueue::default()
    }

    /// Append one encoded frame's bytes (from [`encode`]).
    pub fn enqueue(&mut self, frame: &[u8]) {
        // Reclaim the consumed prefix before it dominates the buffer.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(frame);
    }

    /// Encode `msg` and queue its frame.
    pub fn enqueue_message<T: Serialize>(&mut self, msg: &T) -> Result<(), NetError> {
        let frame = encode(msg)?;
        self.enqueue(&frame);
        Ok(())
    }

    /// Bytes queued but not yet accepted by the sink.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every queued byte has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Write as much as the sink accepts. Returns `Ok(true)` when the
    /// queue drained completely, `Ok(false)` when the sink stopped
    /// taking bytes mid-queue (`WouldBlock`); short `Ok(n)` writes keep
    /// going and `Interrupted` is retried, every other error is the
    /// caller's to map. A sink returning `Ok(0)` with bytes still
    /// pending is a closed pipe and surfaces as `WriteZero`.
    pub fn flush_into<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes with frame data pending",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_the_incremental_decoder() {
        let msgs = vec!["alpha".to_string(), String::new(), "γ".repeat(1000)];
        let mut decoder = FrameDecoder::new();
        for m in &msgs {
            decoder.push(&encode(m).unwrap());
        }
        for m in &msgs {
            let back: String = decoder.next_frame().unwrap().unwrap();
            assert_eq!(&back, m);
        }
        assert!(decoder.next_frame::<String>().unwrap().is_none());
        decoder.finish().unwrap();
    }

    #[test]
    fn bad_magic_and_bad_length_are_typed_errors() {
        let mut decoder = FrameDecoder::new();
        decoder.push(b"XXXX\x00\x01\x00\x00\x00\x00");
        assert!(matches!(
            decoder.next_frame::<String>(),
            Err(NetError::BadMagic(_))
        ));

        let mut decoder = FrameDecoder::new();
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        decoder.push(&frame);
        assert!(matches!(
            decoder.next_frame::<String>(),
            Err(NetError::FrameTooLarge { len: u32::MAX })
        ));
    }

    #[test]
    fn foreign_header_version_is_rejected() {
        let mut frame = encode(&"hi".to_string()).unwrap();
        frame[4] = 0xBE;
        frame[5] = 0xEF;
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame);
        assert_eq!(
            decoder.next_frame::<String>(),
            Err(NetError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 0xBEEF,
            })
        );
    }

    #[test]
    fn truncated_stream_is_detected_at_eof() {
        let frame = encode(&"payload".to_string()).unwrap();
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame[..frame.len() - 1]);
        assert!(decoder.next_frame::<String>().unwrap().is_none());
        assert!(matches!(decoder.finish(), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn blocking_reader_matches_the_decoder() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode(&1u64).unwrap());
        bytes.extend_from_slice(&encode(&2u64).unwrap());
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_message::<_, u64>(&mut cursor).unwrap(), Some(1));
        assert_eq!(read_message::<_, u64>(&mut cursor).unwrap(), Some(2));
        assert_eq!(read_message::<_, u64>(&mut cursor).unwrap(), None);
    }

    #[test]
    fn net_errors_map_to_the_net_failure_class() {
        let e: a4nn_error::A4nnError = NetError::Refused("old build".into()).into();
        assert_eq!(e.exit_code(), 9);
        assert!(e.to_string().contains("handshake refused"));
    }
}
