//! Hand-written Linux syscall bindings for the reactor: `epoll` and
//! `eventfd`, nothing else.
//!
//! The workspace is fully offline, so rather than vendoring a `libc`
//! stand-in for four syscalls, this module declares the exact
//! `extern "C"` surface the reactor needs and wraps it in two RAII
//! types, [`Epoll`] and [`EventFd`]. Everything here is
//! `#[cfg(target_os = "linux")]`; other platforms keep the portable
//! thread-per-connection path and never compile this file.
//!
//! Errno handling rides on `std::io::Error::last_os_error()`, which
//! reads the thread-local errno the same way libc leaves it — no
//! `__errno_location` binding needed.

#![allow(non_camel_case_types)]

use std::io;
use std::os::unix::io::RawFd;

/// `struct epoll_event`. On x86-64 the kernel ABI packs this struct
/// (no padding between `events` and `data`), which is why the glibc
/// header carries `__attribute__((packed))` there; other Linux
/// architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Readiness bit set (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-chosen cookie, returned verbatim — the reactor stores its
    /// connection token here.
    pub data: u64,
}

/// Readiness: the fd has bytes to read (or connections to accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: the fd is in an error state.
pub const EPOLLERR: u32 = 0x008;
/// Condition: the peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// Condition: the peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o0004000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// An epoll instance (closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the only failure mode and is checked below.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = epoll_event {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. For EPOLL_CTL_DEL the kernel ignores the pointer
        // (non-null required only pre-2.6.9), so passing it is fine.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` for `events`, tagging wakeups with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change a registered fd's interest set.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove a registered fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block up to `timeout_ms` (`-1` = forever) for readiness; fills
    /// `events` and returns how many entries are valid. `EINTR` is
    /// retried internally so callers only see real wakeups.
    pub fn wait(&self, events: &mut [epoll_event], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a valid, writable slice for the whole
            // call, and maxevents never exceeds its length.
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` came from epoll_create1 and is closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

/// A nonblocking eventfd: the reactor's cross-thread wakeup doorbell.
///
/// Batch-worker threads finish classifications while the reactor thread
/// is parked in `epoll_wait`; writing the counter from any thread makes
/// the reactor's next wait return immediately.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers; negative return checked.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw descriptor, for epoll registration.
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Ring the doorbell (add 1 to the counter). A full counter
    /// (`WouldBlock`) already guarantees a pending wakeup, so it is
    /// success for our purposes.
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack value.
        let rc = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Reset the counter so the next `notify` produces a fresh edge.
    /// Nonblocking: an already-zero counter is not an error.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        unsafe {
            read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `fd` came from eventfd and is closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_rings_through_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [epoll_event { events: 0, data: 0 }; 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.notify().unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 42);

        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn interest_modification_and_removal() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.as_raw_fd(), EPOLLIN, 7).unwrap();
        ep.modify(ev.as_raw_fd(), EPOLLIN | EPOLLOUT, 8).unwrap();
        ev.notify().unwrap();
        let mut events = [epoll_event { events: 0, data: 0 }; 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        let data = events[0].data;
        assert_eq!(data, 8, "re-registration replaces the token");
        ep.delete(ev.as_raw_fd()).unwrap();
        ev.notify().unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "deleted fd is silent");
    }
}
