//! # a4nn-net — distributed search over TCP
//!
//! The paper's workflow couples its components over pub/sub on one
//! machine; this crate extends the same [`Transport`](a4nn_core::Transport)
//! seam across machine boundaries. Three pieces:
//!
//! - [`frame`] — the wire codec: length-prefixed, versioned frames
//!   carrying JSON payloads (`"A4NN"` magic + `u16` protocol version +
//!   `u32` length), with typed rejection of truncation, corruption, and
//!   foreign protocol revisions.
//! - [`worker`] — the worker process ([`WorkerServer`]): accepts a
//!   coordinator session, rebuilds the deterministic surrogate trainer
//!   from the shipped [`RunSetup`](Message::RunSetup), trains jobs with
//!   [`a4nn_core::train_resilient_direct`], and heartbeats its liveness.
//! - [`transport`] — the coordinator ([`SocketTransport`]): an
//!   implementation of the transport trait that shards each generation across
//!   workers weighted by their advertised GPU counts, detects dead
//!   workers by heartbeat deadline, and requeues their in-flight jobs
//!   through the scheduler's existing retry machinery.
//! - [`reactor`] (Linux) — the event-driven I/O layer: an epoll event
//!   loop over hand-written syscall bindings ([`sys`]) that multiplexes
//!   every connection through one thread, driving nonblocking state
//!   machines built from the same [`FrameDecoder`] plus the buffered
//!   partial-write [`WriteQueue`]. The serve endpoint runs on it by
//!   default on Linux (`--io reactor`).
//!
//! The load-bearing property is *placement invariance*: the worker runs
//! exactly the in-process training function on a purely
//! config-derived factory, simulated GPU placement comes from the
//! discrete-event schedule (not from which worker trained what), and
//! `f64`s survive the JSON codec bit-exactly — so direct, bus, and
//! socket runs of the same seeded search produce byte-identical commons.
//!
//! Failure taxonomy: trainer panics on a worker are *data* (the worker's
//! retry loop absorbs them; exhaustion becomes `Terminated::Failed`),
//! while dead workers, bad frames, and refused handshakes are
//! `Net`-class [`A4nnError`](a4nn_error::A4nnError)s — machinery
//! breakage with its own CLI exit code.

#![warn(clippy::redundant_clone)]

pub mod frame;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
#[cfg(target_os = "linux")]
pub mod sys;
pub mod transport;
pub mod worker;

pub use frame::{
    encode, read_message, write_message, FrameDecoder, NetError, WriteQueue, HEADER_LEN, MAGIC,
    MAX_PAYLOAD, PROTOCOL_VERSION, READ_CHUNK,
};
pub use protocol::Message;
#[cfg(target_os = "linux")]
pub use reactor::{
    CloseReason, FrameHandler, HandlerAction, Reactor, ReactorConfig, ReactorHandle, Token,
};
pub use transport::{SocketOptions, SocketTransport};
pub use worker::{WorkerHandle, WorkerServer};
