//! Negative paths of `write_atomic`, the primitive the whole resume
//! machinery commits through: failures must surface as `Io`-class
//! errors (exit 4) and must never tear a previously committed target.

use a4nn_lineage::write_atomic;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("a4nn-write-atomic-{tag}-{}", std::process::id()))
}

/// A pre-existing stale `.tmp` sibling (residue of an earlier crash) is
/// silently overwritten: the commit succeeds, the target holds the new
/// bytes, and the residue is consumed by the rename.
#[test]
fn stale_tmp_residue_is_overwritten_not_fatal() {
    let dir = tmp("residue");
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("manifest.json");
    std::fs::write(
        dir.join("manifest.json.tmp"),
        b"torn half-write from a crash",
    )
    .unwrap();

    write_atomic(&target, b"fresh commit").unwrap();
    assert_eq!(std::fs::read(&target).unwrap(), b"fresh commit");
    assert!(
        !dir.join("manifest.json.tmp").exists(),
        "the rename must consume the tmp file"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Writing under a parent that is a *file* cannot even create the tmp
/// sibling: an `Io`-class error naming the tmp path, target untouched.
#[test]
fn parent_being_a_file_is_an_io_error() {
    let file = tmp("parent-file");
    std::fs::write(&file, b"occupied").unwrap();
    let target = file.join("nested").join("state.json");

    let err = write_atomic(&target, b"payload").unwrap_err();
    assert_eq!(err.exit_code(), 4, "write failures are Io-class: {err}");
    assert!(
        err.to_string().contains(".tmp"),
        "the diagnostic names the tmp path that failed: {err}"
    );
    assert_eq!(std::fs::read(&file).unwrap(), b"occupied");
    std::fs::remove_file(&file).ok();
}

/// A target that is a populated *directory* defeats the rename step:
/// the error is `Io`-class, and the directory's contents survive.
#[test]
fn rename_over_a_populated_directory_is_an_io_error() {
    let dir = tmp("target-dir");
    let target = dir.join("state.json");
    std::fs::create_dir_all(&target).unwrap();
    std::fs::write(target.join("inner.txt"), b"keep me").unwrap();

    let err = write_atomic(&target, b"payload").unwrap_err();
    assert_eq!(err.exit_code(), 4, "rename failures are Io-class: {err}");
    assert!(
        err.to_string().contains("renaming"),
        "the diagnostic names the failing step: {err}"
    );
    assert_eq!(
        std::fs::read(target.join("inner.txt")).unwrap(),
        b"keep me",
        "a failed commit must not disturb the existing target"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A read-only directory refuses the tmp write — unless the process
/// runs as root (CI containers often do), in which case the probe
/// write succeeds and the assertion is skipped rather than faked.
#[test]
fn read_only_directory_is_an_io_error_when_enforceable() {
    use std::os::unix::fs::PermissionsExt;
    let dir = tmp("readonly");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();

    // Root bypasses mode bits; probe before asserting.
    let enforceable = std::fs::write(dir.join("probe"), b"x").is_err();
    if enforceable {
        let err = write_atomic(&dir.join("state.json"), b"payload").unwrap_err();
        assert_eq!(
            err.exit_code(),
            4,
            "permission failures are Io-class: {err}"
        );
        assert!(
            !dir.join("state.json").exists(),
            "nothing may appear under the real name"
        );
    }
    std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Overwriting a populated regular file is atomic replacement: either
/// the old bytes or the new bytes, and after a successful commit,
/// exactly the new bytes.
#[test]
fn rename_over_populated_target_replaces_it_wholesale() {
    let dir = tmp("replace");
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("state.json");
    std::fs::write(
        &target,
        b"previous committed snapshot, longer than the next",
    )
    .unwrap();

    write_atomic(&target, b"new snapshot").unwrap();
    assert_eq!(
        std::fs::read(&target).unwrap(),
        b"new snapshot",
        "no trailing bytes of the longer previous file may survive"
    );
    std::fs::remove_dir_all(&dir).ok();
}
