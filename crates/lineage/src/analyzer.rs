//! The analyzer: query and aggregation over a data commons.
//!
//! Rust analogue of the paper's Jupyter-notebook analyzer (§2.4): search
//! for NNs with specific attributes, study fitness-curve shapes, extract
//! Pareto-optimal models, and answer the conclusions' questions ("Is there
//! a significant correlation between high FLOPS and high validation
//! accuracy?").

use crate::commons::DataCommons;
use crate::record::ModelRecord;
use a4nn_error::A4nnError;
use a4nn_nsga::{Dominance, Objectives};

/// Read-only analysis view over a commons.
#[derive(Debug, Clone, Copy)]
pub struct Analyzer<'a> {
    commons: &'a DataCommons,
}

impl<'a> Analyzer<'a> {
    /// Build an analyzer over a commons.
    pub fn new(commons: &'a DataCommons) -> Self {
        Analyzer { commons }
    }

    /// All records.
    pub fn records(&self) -> &'a [ModelRecord] {
        &self.commons.records
    }

    /// Attribute search: records satisfying `pred`.
    pub fn find(&self, pred: impl Fn(&ModelRecord) -> bool) -> Vec<&'a ModelRecord> {
        self.commons.records.iter().filter(|r| pred(r)).collect()
    }

    /// Mean final fitness across the commons.
    pub fn mean_fitness(&self) -> f64 {
        let n = self.commons.records.len();
        if n == 0 {
            return 0.0;
        }
        self.commons
            .records
            .iter()
            .map(|r| r.final_fitness)
            .sum::<f64>()
            / n as f64
    }

    /// Total epochs trained across all models (Figure 7's bar heights).
    pub fn total_epochs(&self) -> u64 {
        self.commons
            .records
            .iter()
            .map(|r| u64::from(r.epochs_trained()))
            .sum()
    }

    /// Total training wall time across all models (GPU-seconds).
    pub fn total_wall_time(&self) -> f64 {
        self.commons.records.iter().map(|r| r.wall_time_s).sum()
    }

    /// Fraction of models whose training was terminated early
    /// (Figure 8's legend percentages), in `[0, 1]`.
    pub fn early_termination_rate(&self) -> f64 {
        let n = self.commons.records.len();
        if n == 0 {
            return 0.0;
        }
        self.commons
            .records
            .iter()
            .filter(|r| r.terminated_early())
            .count() as f64
            / n as f64
    }

    /// Termination epochs `e_t` of early-terminated models (Figure 8's
    /// distribution).
    pub fn termination_epochs(&self) -> Vec<u32> {
        self.commons
            .records
            .iter()
            .filter_map(ModelRecord::termination_epoch)
            .collect()
    }

    /// Histogram of `e_t` over `[1, max_epoch]` (index 0 = epoch 1).
    pub fn termination_histogram(&self, max_epoch: u32) -> Vec<usize> {
        let mut hist = vec![0usize; max_epoch as usize];
        for e in self.termination_epochs() {
            if (1..=max_epoch).contains(&e) {
                hist[(e - 1) as usize] += 1;
            }
        }
        hist
    }

    /// Mean termination epoch of early-terminated models, if any.
    pub fn mean_termination_epoch(&self) -> Option<f64> {
        let es = self.termination_epochs();
        if es.is_empty() {
            None
        } else {
            Some(es.iter().map(|&e| f64::from(e)).sum::<f64>() / es.len() as f64)
        }
    }

    /// Pareto-optimal records for maximized fitness and minimized FLOPs
    /// (the models plotted in Figure 6).
    pub fn pareto_front(&self) -> Vec<&'a ModelRecord> {
        let rs = &self.commons.records;
        rs.iter()
            .filter(|a| {
                !rs.iter().any(|b| {
                    (b.final_fitness >= a.final_fitness && b.flops <= a.flops)
                        && (b.final_fitness > a.final_fitness || b.flops < a.flops)
                })
            })
            .collect()
    }

    /// Pareto-optimal records over each record's *full* objective vector
    /// (N-dimensional). Legacy records report the reconstructed
    /// `(−final_fitness, flops)` pair, so on pre-registry commons this
    /// agrees with [`pareto_front`](Self::pareto_front).
    ///
    /// A commons mixing objective dimensions (e.g. merged from runs with
    /// different `--objectives` sets) is a foreign-data condition and
    /// returns a typed [`A4nnError::Config`] instead of panicking inside
    /// the dominance comparison.
    pub fn pareto_front_objectives(&self) -> Result<Vec<&'a ModelRecord>, A4nnError> {
        let rs = &self.commons.records;
        let vectors: Vec<Objectives> = rs
            .iter()
            .map(|r| Objectives::new(r.objective_vector()))
            .collect();
        if let Some(first) = vectors.first() {
            let dim = first.len();
            if let Some((i, bad)) = vectors.iter().enumerate().find(|(_, v)| v.len() != dim) {
                return Err(A4nnError::Config(format!(
                    "commons mixes objective dimensions: model {} has {} objectives, model {} has {}",
                    rs[0].model_id,
                    dim,
                    rs[i].model_id,
                    bad.len(),
                )));
            }
        }
        let mut front = Vec::new();
        for (i, a) in vectors.iter().enumerate() {
            let mut dominated = false;
            for (j, b) in vectors.iter().enumerate() {
                if i == j {
                    continue;
                }
                // Dimensions verified uniform above; a mismatch here is
                // unreachable, but stay on the fallible path anyway.
                let cmp = a
                    .try_compare(b)
                    .map_err(|e| A4nnError::Config(format!("objective comparison failed: {e}")))?;
                if cmp == Dominance::DominatedBy {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                front.push(&rs[i]);
            }
        }
        Ok(front)
    }

    /// The most accurate model. NaN fitness (failed trainings) ranks
    /// strictly worst rather than poisoning the comparison.
    pub fn best_by_fitness(&self) -> Option<&'a ModelRecord> {
        self.commons
            .records
            .iter()
            .max_by(|a, b| crate::record::fitness_cmp(a.final_fitness, b.final_fitness))
    }

    /// Pearson correlation between FLOPs and final fitness — the
    /// conclusions' open question about high-FLOPs/high-accuracy
    /// correlation. Returns `None` for degenerate inputs.
    pub fn flops_fitness_correlation(&self) -> Option<f64> {
        let rs = &self.commons.records;
        if rs.len() < 2 {
            return None;
        }
        let n = rs.len() as f64;
        let mx = rs.iter().map(|r| r.flops).sum::<f64>() / n;
        let my = rs.iter().map(|r| r.final_fitness).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for r in rs {
            let dx = r.flops - mx;
            let dy = r.final_fitness - my;
            cov += dx * dy;
            vx += dx * dx;
            vy += dy * dy;
        }
        if vx <= 0.0 || vy <= 0.0 {
            return None;
        }
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }

    /// Mean absolute prediction error over early-terminated models.
    pub fn mean_prediction_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .commons
            .records
            .iter()
            .filter_map(ModelRecord::prediction_error)
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EngineParamsRecord, EpochRecord};
    use a4nn_genome::Genome;

    fn record(id: u64, fitness: f64, flops: f64, early: Option<u32>) -> ModelRecord {
        let epochs_trained = early.unwrap_or(25);
        ModelRecord {
            model_id: id,
            generation: 0,
            gpu: None,
            genome: Genome::from_compact_string("0000000").unwrap(),
            arch_summary: String::new(),
            flops,
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: Some(EngineParamsRecord {
                function: "exp-base".into(),
                c_min: 3,
                e_pred: 25,
                n: 3,
                r: 0.5,
            }),
            epochs: (1..=epochs_trained)
                .map(|e| EpochRecord {
                    epoch: e,
                    train_acc: fitness,
                    val_acc: fitness - 1.0,
                    duration_s: 2.0,
                    prediction: None,
                })
                .collect(),
            final_fitness: fitness,
            predicted_fitness: early.map(|_| fitness),
            termination: if early.is_some() {
                crate::record::Terminated::Early
            } else {
                crate::record::Terminated::Completed
            },
            attempts: 1,
            beam: "low".into(),
            wall_time_s: 2.0 * f64::from(epochs_trained),
        }
    }

    fn commons() -> DataCommons {
        DataCommons::new(vec![
            record(0, 90.0, 400.0, Some(10)),
            record(1, 95.0, 600.0, Some(14)),
            record(2, 85.0, 300.0, None),
            record(3, 99.0, 900.0, Some(8)),
            record(4, 80.0, 800.0, None),
        ])
    }

    #[test]
    fn totals_and_means() {
        let c = commons();
        let a = Analyzer::new(&c);
        assert_eq!(a.total_epochs(), 10 + 14 + 25 + 8 + 25);
        assert!((a.mean_fitness() - 89.8).abs() < 1e-9);
        assert!((a.total_wall_time() - 2.0 * 82.0).abs() < 1e-9);
    }

    #[test]
    fn termination_statistics() {
        let c = commons();
        let a = Analyzer::new(&c);
        assert!((a.early_termination_rate() - 0.6).abs() < 1e-12);
        let mut es = a.termination_epochs();
        es.sort_unstable();
        assert_eq!(es, vec![8, 10, 14]);
        assert!((a.mean_termination_epoch().unwrap() - 32.0 / 3.0).abs() < 1e-9);
        let hist = a.termination_histogram(25);
        assert_eq!(hist.iter().sum::<usize>(), 3);
        assert_eq!(hist[7], 1); // epoch 8
    }

    #[test]
    fn pareto_front_max_fitness_min_flops() {
        let c = commons();
        let a = Analyzer::new(&c);
        let ids: Vec<u64> = a.pareto_front().iter().map(|r| r.model_id).collect();
        // (85,300) (90,400) (95,600) (99,900) are non-dominated;
        // (80,800) is dominated by (95,600).
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn objective_front_agrees_with_legacy_front_on_untagged_records() {
        let c = commons();
        let a = Analyzer::new(&c);
        let legacy: Vec<u64> = a.pareto_front().iter().map(|r| r.model_id).collect();
        let nd: Vec<u64> = a
            .pareto_front_objectives()
            .unwrap()
            .iter()
            .map(|r| r.model_id)
            .collect();
        assert_eq!(legacy, nd);
    }

    #[test]
    fn objective_front_uses_the_full_vector() {
        // Two records with identical (fitness, flops) but differing
        // peak-workspace: the 3-objective front keeps only the smaller.
        let mut a = record(0, 90.0, 400.0, None);
        a.objective_names = vec!["neg_fitness".into(), "flops".into(), "peak_ws_bytes".into()];
        a.objective_values = vec![-90.0, 400.0, 1024.0];
        let mut b = record(1, 90.0, 400.0, None);
        b.objective_names = a.objective_names.clone();
        b.objective_values = vec![-90.0, 400.0, 4096.0];
        let c = DataCommons::new(vec![a, b]);
        let front: Vec<u64> = Analyzer::new(&c)
            .pareto_front_objectives()
            .unwrap()
            .iter()
            .map(|r| r.model_id)
            .collect();
        assert_eq!(front, vec![0]);
    }

    #[test]
    fn mixed_dimension_commons_is_a_typed_config_error() {
        let mut tagged = record(1, 90.0, 400.0, None);
        tagged.objective_names = vec!["neg_fitness".into(), "flops".into(), "macs".into()];
        tagged.objective_values = vec![-90.0, 400.0, 1e8];
        let c = DataCommons::new(vec![record(0, 85.0, 300.0, None), tagged]);
        let err = Analyzer::new(&c).pareto_front_objectives().unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("mixes objective dimensions"));
    }

    #[test]
    fn best_by_fitness() {
        let c = commons();
        assert_eq!(Analyzer::new(&c).best_by_fitness().unwrap().model_id, 3);
    }

    #[test]
    fn correlation_detects_positive_relation() {
        // Fitness mostly grows with FLOPs in the sample (except model 4).
        let c = commons();
        let corr = Analyzer::new(&c).flops_fitness_correlation().unwrap();
        assert!(corr.abs() <= 1.0);
        assert!(corr > 0.0, "expected positive, got {corr}");
    }

    #[test]
    fn find_filters_records() {
        let c = commons();
        let a = Analyzer::new(&c);
        let high_acc = a.find(|r| r.final_fitness > 90.0);
        assert_eq!(high_acc.len(), 2);
    }

    #[test]
    fn empty_commons_degenerates_gracefully() {
        let c = DataCommons::default();
        let a = Analyzer::new(&c);
        assert_eq!(a.mean_fitness(), 0.0);
        assert_eq!(a.total_epochs(), 0);
        assert_eq!(a.early_termination_rate(), 0.0);
        assert!(a.mean_termination_epoch().is_none());
        assert!(a.pareto_front().is_empty());
        assert!(a.best_by_fitness().is_none());
        assert!(a.flops_fitness_correlation().is_none());
        assert!(a.mean_prediction_error().is_none());
    }

    #[test]
    fn prediction_error_mean() {
        let c = commons();
        let a = Analyzer::new(&c);
        // Early records have predicted == final_fitness, measured val_acc
        // = fitness − 1 ⇒ error 1.0 each.
        assert!((a.mean_prediction_error().unwrap() - 1.0).abs() < 1e-9);
    }
}
