//! Record-trail types: everything the paper lists as data-commons content
//! (§4.5): "epoch times, training accuracies, validation accuracies,
//! FLOPS, predictions, prediction engine parameters, genomes, and
//! architecture information for each neural architecture."

use a4nn_genome::Genome;
use serde::{Deserialize, Serialize};

/// One training epoch of one model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: u32,
    /// Training accuracy (%) after this epoch.
    pub train_acc: f64,
    /// Validation accuracy (%) after this epoch — the fitness the
    /// prediction engine consumes.
    pub val_acc: f64,
    /// Wall/simulated seconds the epoch took.
    pub duration_s: f64,
    /// The engine's fitness prediction made after this epoch, if any.
    pub prediction: Option<f64>,
}

/// Prediction-engine configuration attached to a record trail (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineParamsRecord {
    /// Parametric function name (e.g. `"exp-base"`).
    pub function: String,
    /// Minimum points before predicting.
    pub c_min: usize,
    /// Epoch predicted for.
    pub e_pred: u32,
    /// Convergence window.
    pub n: usize,
    /// Convergence tolerance.
    pub r: f64,
}

/// How a model's training run ended.
///
/// `Completed` and `Early` are the two paper outcomes (trained to the
/// epoch budget, or terminated early by the prediction engine). `Failed`
/// is the fault-tolerance outcome: the trainer exhausted its retry
/// budget, and the trail carries whatever partial epoch history the last
/// attempt produced. NSGA-II sees failed models with fitness 0, so they
/// are dominated and naturally selected out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Terminated {
    /// Trained to the full epoch budget.
    #[default]
    Completed,
    /// Terminated early by the prediction engine.
    Early,
    /// Exhausted its retry budget; the epoch trail is partial.
    Failed,
}

impl Terminated {
    /// Stable lower-case label used in CSV exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Terminated::Completed => "completed",
            Terminated::Early => "early",
            Terminated::Failed => "failed",
        }
    }
}

fn default_attempts() -> u32 {
    1
}

/// Ascending fitness order that ranks NaN (a failed training's fitness)
/// strictly worst — below every real value, including −∞ — instead of
/// panicking like `partial_cmp().unwrap()` or letting `total_cmp` rank a
/// negative NaN above everything. Use wherever records are ordered by
/// `final_fitness`.
pub fn fitness_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// The complete record trail of one neural architecture's life in the
/// search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Globally unique model id within the run.
    pub model_id: u64,
    /// Generation that produced the model.
    pub generation: usize,
    /// Virtual GPU the model trained on, when known.
    pub gpu: Option<usize>,
    /// The genome.
    pub genome: Genome,
    /// Human-readable architecture summary.
    pub arch_summary: String,
    /// Estimated forward FLOPs (the NAS's second objective).
    pub flops: f64,
    /// Names of the objective set the run searched under, in objective
    /// order. Empty on records written before the objective registry;
    /// consumers fall back to the legacy `(neg_fitness, flops)` pair
    /// via [`objective_labels`](Self::objective_labels).
    #[serde(default)]
    pub objective_names: Vec<String>,
    /// The minimized objective values, aligned with `objective_names`.
    #[serde(default)]
    pub objective_values: Vec<f64>,
    /// Engine configuration, absent for standalone-NAS runs.
    pub engine: Option<EngineParamsRecord>,
    /// Per-epoch entries, in order.
    pub epochs: Vec<EpochRecord>,
    /// Fitness the NAS used for selection (measured or predicted).
    pub final_fitness: f64,
    /// The engine's converged prediction, if training stopped early.
    pub predicted_fitness: Option<f64>,
    /// How the training run ended. Defaults to `Completed` when absent
    /// so record trails serialized before the fault-tolerance layer
    /// still deserialize.
    #[serde(default)]
    pub termination: Terminated,
    /// Training attempts consumed (1 = no retries).
    #[serde(default = "default_attempts")]
    pub attempts: u32,
    /// Beam-intensity label of the dataset (`"low"`, `"medium"`, `"high"`).
    pub beam: String,
    /// Total seconds spent training this model.
    pub wall_time_s: f64,
}

impl ModelRecord {
    /// Number of epochs actually trained.
    pub fn epochs_trained(&self) -> u32 {
        self.epochs.len() as u32
    }

    /// Whether the engine terminated training early.
    pub fn terminated_early(&self) -> bool {
        self.termination == Terminated::Early
    }

    /// Whether the model exhausted its retry budget.
    pub fn failed(&self) -> bool {
        self.termination == Terminated::Failed
    }

    /// Termination epoch `e_t` if the engine stopped training early.
    pub fn termination_epoch(&self) -> Option<u32> {
        if self.terminated_early() {
            self.epochs.last().map(|e| e.epoch)
        } else {
            None
        }
    }

    /// The measured validation-accuracy learning curve.
    pub fn learning_curve(&self) -> Vec<(u32, f64)> {
        self.epochs.iter().map(|e| (e.epoch, e.val_acc)).collect()
    }

    /// Prediction error |predicted − last measured fitness|, when a
    /// prediction exists.
    pub fn prediction_error(&self) -> Option<f64> {
        let predicted = self.predicted_fitness?;
        let measured = self.epochs.last()?.val_acc;
        Some((predicted - measured).abs())
    }

    /// The objective names this record was measured under. Records
    /// written before the objective registry carry none and report the
    /// legacy pair.
    pub fn objective_labels(&self) -> Vec<String> {
        if self.objective_names.is_empty() {
            vec!["neg_fitness".to_string(), "flops".to_string()]
        } else {
            self.objective_names.clone()
        }
    }

    /// The minimized objective vector, aligned with
    /// [`objective_labels`](Self::objective_labels). Legacy records
    /// reconstruct the pair `(−final_fitness, flops)` the search
    /// actually minimized.
    pub fn objective_vector(&self) -> Vec<f64> {
        if self.objective_values.is_empty() {
            vec![-self.final_fitness, self.flops]
        } else {
            self.objective_values.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4nn_genome::Genome;

    pub(crate) fn sample_record(id: u64, early: bool, epochs: u32) -> ModelRecord {
        let genome = Genome::from_compact_string("1011010-0110101-0000001").unwrap();
        let epoch_records: Vec<EpochRecord> = (1..=epochs)
            .map(|e| EpochRecord {
                epoch: e,
                train_acc: 50.0 + f64::from(e),
                val_acc: 48.0 + f64::from(e),
                duration_s: 2.0,
                prediction: if e >= 3 { Some(90.0) } else { None },
            })
            .collect();
        ModelRecord {
            model_id: id,
            generation: 0,
            gpu: Some(0),
            genome,
            arch_summary: "3 phases".into(),
            flops: 500.0,
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: Some(EngineParamsRecord {
                function: "exp-base".into(),
                c_min: 3,
                e_pred: 25,
                n: 3,
                r: 0.5,
            }),
            epochs: epoch_records,
            final_fitness: if early {
                90.0
            } else {
                48.0 + f64::from(epochs)
            },
            predicted_fitness: early.then_some(90.0),
            termination: if early {
                Terminated::Early
            } else {
                Terminated::Completed
            },
            attempts: 1,
            beam: "medium".into(),
            wall_time_s: 2.0 * f64::from(epochs),
        }
    }

    #[test]
    fn termination_epoch_only_for_early_models() {
        let early = sample_record(1, true, 12);
        assert_eq!(early.termination_epoch(), Some(12));
        let full = sample_record(2, false, 25);
        assert_eq!(full.termination_epoch(), None);
    }

    #[test]
    fn learning_curve_matches_epochs() {
        let r = sample_record(3, true, 5);
        let curve = r.learning_curve();
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0], (1, 49.0));
        assert_eq!(curve[4], (5, 53.0));
    }

    #[test]
    fn prediction_error_is_absolute_gap() {
        let r = sample_record(4, true, 10);
        // predicted 90, last measured 58 ⇒ 32.
        assert_eq!(r.prediction_error(), Some(32.0));
        let none = sample_record(5, false, 10);
        assert_eq!(none.prediction_error(), None);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_record(6, true, 8);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ModelRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn failed_models_report_status_but_no_termination_epoch() {
        let mut r = sample_record(7, false, 4);
        r.termination = Terminated::Failed;
        r.attempts = 3;
        assert!(r.failed());
        assert!(!r.terminated_early());
        assert_eq!(r.termination_epoch(), None);
        assert_eq!(r.termination.as_str(), "failed");
    }

    #[test]
    fn legacy_json_without_termination_fields_deserializes() {
        // A record serialized before the fault-tolerance layer has no
        // `termination`/`attempts` keys; defaults must fill them in.
        let r = sample_record(8, false, 2);
        let json = serde_json::to_string(&r).unwrap();
        let stripped = json
            .replace("\"termination\":\"Completed\",", "")
            .replace("\"attempts\":1,", "");
        assert_ne!(json, stripped);
        let back: ModelRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.termination, Terminated::Completed);
        assert_eq!(back.attempts, 1);
    }

    #[test]
    fn legacy_records_fall_back_to_the_paper_objective_pair() {
        let r = sample_record(9, false, 3);
        assert!(r.objective_names.is_empty());
        assert_eq!(r.objective_labels(), vec!["neg_fitness", "flops"]);
        assert_eq!(r.objective_vector(), vec![-r.final_fitness, r.flops]);

        let mut tagged = sample_record(10, false, 3);
        tagged.objective_names = vec!["neg_fitness".into(), "macs".into()];
        tagged.objective_values = vec![-51.0, 1e8];
        assert_eq!(tagged.objective_labels(), tagged.objective_names);
        assert_eq!(tagged.objective_vector(), vec![-51.0, 1e8]);
    }

    #[test]
    fn legacy_json_without_objective_fields_deserializes() {
        let r = sample_record(11, false, 2);
        let json = serde_json::to_string(&r).unwrap();
        let stripped = json
            .replace("\"objective_names\":[],", "")
            .replace("\"objective_values\":[],", "");
        assert_ne!(json, stripped);
        let back: ModelRecord = serde_json::from_str(&stripped).unwrap();
        assert!(back.objective_names.is_empty());
        assert!(back.objective_values.is_empty());
        assert_eq!(back, r);
    }
}
