//! The data commons: thread-safe collection of record trails and the
//! on-disk JSON layout (one file per model plus a manifest), the local
//! stand-in for the paper's Harvard Dataverse deposit.

use crate::record::ModelRecord;
use a4nn_error::A4nnError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Write `bytes` to `path` atomically: write a `.tmp` sibling first, then
/// rename it over the target. A crash mid-write leaves at worst a stale
/// `.tmp` file next to the previous intact snapshot — never a torn file
/// under the real name. Loaders skip `.tmp` residue by construction
/// (nothing looks up files with that suffix).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), A4nnError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes).map_err(|e| A4nnError::io(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, path).map_err(|e| {
        A4nnError::io(
            format!("renaming {} to {}", tmp.display(), path.display()),
            e,
        )
    })
}

/// Thread-safe recorder that concurrent trainers append to. The workflow
/// shares one tracker across all virtual GPUs.
#[derive(Debug, Default)]
pub struct LineageTracker {
    records: Mutex<Vec<ModelRecord>>,
}

impl LineageTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one completed record trail.
    pub fn record(&self, record: ModelRecord) {
        self.records.lock().push(record);
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Drain into a [`DataCommons`], sorted by model id so the commons is
    /// deterministic regardless of training interleaving.
    pub fn into_commons(self) -> DataCommons {
        let mut records = self.records.into_inner();
        records.sort_by_key(|r| r.model_id);
        DataCommons { records }
    }
}

/// Manifest stored next to the per-model files.
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    model_count: usize,
    model_ids: Vec<u64>,
}

/// An immutable collection of record trails with disk persistence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataCommons {
    /// The record trails, sorted by model id.
    pub records: Vec<ModelRecord>,
}

impl DataCommons {
    /// Wrap records (sorted by model id).
    pub fn new(mut records: Vec<ModelRecord>) -> Self {
        records.sort_by_key(|r| r.model_id);
        DataCommons { records }
    }

    /// Number of record trails.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the commons is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Look up a model by id.
    pub fn get(&self, model_id: u64) -> Option<&ModelRecord> {
        self.records
            .binary_search_by_key(&model_id, |r| r.model_id)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Write the commons to `dir`: `manifest.json` plus
    /// `model_<id>.json` per record.
    ///
    /// Every file is written atomically (tmp + rename), and the manifest
    /// is written last: a crash anywhere in the middle leaves the previous
    /// manifest intact, so [`load_dir`](Self::load_dir) still sees a
    /// consistent (if older) snapshot.
    pub fn save_dir(&self, dir: &Path) -> Result<(), A4nnError> {
        fs::create_dir_all(dir)
            .map_err(|e| A4nnError::io(format!("creating commons dir {}", dir.display()), e))?;
        for record in &self.records {
            let path = dir.join(format!("model_{:05}.json", record.model_id));
            let json = serde_json::to_vec_pretty(record).map_err(|e| {
                A4nnError::Internal(format!("serializing record {}: {e}", record.model_id))
            })?;
            write_atomic(&path, &json)?;
        }
        let manifest = Manifest {
            model_count: self.records.len(),
            model_ids: self.records.iter().map(|r| r.model_id).collect(),
        };
        let json = serde_json::to_vec_pretty(&manifest)
            .map_err(|e| A4nnError::Internal(format!("serializing manifest: {e}")))?;
        write_atomic(&dir.join("manifest.json"), &json)?;
        Ok(())
    }

    /// Load a commons previously written by [`save_dir`](Self::save_dir).
    pub fn load_dir(dir: &Path) -> Result<Self, A4nnError> {
        let manifest_path = dir.join("manifest.json");
        let bytes = fs::read(&manifest_path)
            .map_err(|e| A4nnError::io(format!("reading {}", manifest_path.display()), e))?;
        let manifest: Manifest = serde_json::from_slice(&bytes)
            .map_err(|e| A4nnError::io(format!("parsing {}", manifest_path.display()), e.into()))?;
        let mut records = Vec::with_capacity(manifest.model_count);
        for id in manifest.model_ids {
            let path = dir.join(format!("model_{id:05}.json"));
            let bytes = fs::read(&path)
                .map_err(|e| A4nnError::io(format!("reading {}", path.display()), e))?;
            let record: ModelRecord = serde_json::from_slice(&bytes)
                .map_err(|e| A4nnError::io(format!("parsing {}", path.display()), e.into()))?;
            records.push(record);
        }
        Ok(DataCommons::new(records))
    }

    /// Merge another commons into this one (e.g. the three beam
    /// intensities of one experiment).
    pub fn merge(&mut self, other: DataCommons) {
        self.records.extend(other.records);
        self.records.sort_by_key(|r| r.model_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EngineParamsRecord, EpochRecord};
    use a4nn_genome::Genome;

    fn record(id: u64) -> ModelRecord {
        ModelRecord {
            model_id: id,
            generation: 0,
            gpu: None,
            genome: Genome::from_compact_string("0000000").unwrap(),
            arch_summary: "1 phase".into(),
            flops: 100.0,
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: Some(EngineParamsRecord {
                function: "exp-base".into(),
                c_min: 3,
                e_pred: 25,
                n: 3,
                r: 0.5,
            }),
            epochs: vec![EpochRecord {
                epoch: 1,
                train_acc: 60.0,
                val_acc: 58.0,
                duration_s: 1.0,
                prediction: None,
            }],
            final_fitness: 58.0,
            predicted_fitness: None,
            termination: crate::record::Terminated::Completed,
            attempts: 1,
            beam: "low".into(),
            wall_time_s: 1.0,
        }
    }

    #[test]
    fn tracker_collects_and_sorts() {
        let tracker = LineageTracker::new();
        tracker.record(record(5));
        tracker.record(record(2));
        tracker.record(record(9));
        assert_eq!(tracker.len(), 3);
        let commons = tracker.into_commons();
        let ids: Vec<u64> = commons.records.iter().map(|r| r.model_id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn tracker_is_usable_across_threads() {
        let tracker = std::sync::Arc::new(LineageTracker::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tr = tracker.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8u64 {
                    tr.record(record(t * 8 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tracker.len(), 32);
    }

    #[test]
    fn get_by_id() {
        let commons = DataCommons::new(vec![record(3), record(1)]);
        assert_eq!(commons.get(3).unwrap().model_id, 3);
        assert!(commons.get(42).is_none());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("a4nn-commons-{}", std::process::id()));
        let commons = DataCommons::new(vec![record(0), record(1), record(2)]);
        commons.save_dir(&dir).unwrap();
        let loaded = DataCommons::load_dir(&dir).unwrap();
        assert_eq!(commons, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_tmp_residue_and_load_ignores_stale_tmp() {
        let dir = std::env::temp_dir().join(format!("a4nn-commons-atomic-{}", std::process::id()));
        let commons = DataCommons::new(vec![record(0), record(1)]);
        commons.save_dir(&dir).unwrap();
        // A clean save renames every tmp file away.
        let tmps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(tmps.is_empty(), "tmp residue after save: {tmps:?}");
        // Simulate a later save that crashed mid-write: torn tmp files
        // next to the intact snapshot must not affect loading.
        std::fs::write(dir.join("model_00000.json.tmp"), b"{ torn").unwrap();
        std::fs::write(dir.join("manifest.json.tmp"), b"{ torn").unwrap();
        let loaded = DataCommons::load_dir(&dir).unwrap();
        assert_eq!(loaded, commons);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_existing_file() {
        let dir = std::env::temp_dir().join(format!("a4nn-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        let dir = std::env::temp_dir().join("a4nn-definitely-missing-commons");
        assert!(DataCommons::load_dir(&dir).is_err());
    }

    #[test]
    fn merge_keeps_order() {
        let mut a = DataCommons::new(vec![record(0), record(4)]);
        let b = DataCommons::new(vec![record(2)]);
        a.merge(b);
        let ids: Vec<u64> = a.records.iter().map(|r| r.model_id).collect();
        assert_eq!(ids, vec![0, 2, 4]);
    }
}
