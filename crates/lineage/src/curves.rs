//! Learning-curve shape analysis.
//!
//! §2.4: the analyzer lets scientists "study NN performance and evolution
//! throughout training, the shape of fitness curves, and the relationship
//! between the architecture and performance". This module classifies each
//! record trail's validation-accuracy curve into a coarse shape taxonomy
//! and aggregates shape statistics per commons.

use crate::commons::DataCommons;
use crate::record::ModelRecord;
use serde::{Deserialize, Serialize};

/// Coarse learning-curve shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveShape {
    /// Concave, saturating rise — the "well-behaved" curve of §2.1.1.
    Saturating,
    /// Still accelerating at the end of training (convex): a late bloomer.
    Accelerating,
    /// Never left chance level.
    Flat,
    /// Large non-monotone swings (unstable optimization).
    Erratic,
    /// Too few epochs to judge.
    TooShort,
}

impl CurveShape {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CurveShape::Saturating => "saturating",
            CurveShape::Accelerating => "accelerating",
            CurveShape::Flat => "flat",
            CurveShape::Erratic => "erratic",
            CurveShape::TooShort => "too-short",
        }
    }
}

/// Classify one validation-accuracy curve.
///
/// Heuristics (in order): fewer than 5 points ⇒ `TooShort`; total rise
/// under 5 points ⇒ `Flat`; mean absolute backstep above 20% of the total
/// rise ⇒ `Erratic`; second-half gain exceeding first-half gain ⇒
/// `Accelerating`; otherwise `Saturating`.
pub fn classify_curve(vals: &[f64]) -> CurveShape {
    if vals.len() < 5 {
        return CurveShape::TooShort;
    }
    let first = vals[0];
    let last = vals[vals.len() - 1];
    let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let rise = max - first;
    if rise < 5.0 && (last - first).abs() < 5.0 {
        return CurveShape::Flat;
    }
    let mut backsteps = 0.0;
    let mut count = 0.0f64;
    for w in vals.windows(2) {
        if w[1] < w[0] {
            backsteps += w[0] - w[1];
        }
        count += 1.0;
    }
    let mean_backstep = backsteps / count.max(1.0);
    if mean_backstep > 0.2 * rise.max(1.0) / 2.0 {
        return CurveShape::Erratic;
    }
    let mid = vals.len() / 2;
    let first_half_gain = vals[mid] - vals[0];
    let second_half_gain = last - vals[mid];
    if second_half_gain > first_half_gain {
        CurveShape::Accelerating
    } else {
        CurveShape::Saturating
    }
}

/// Classify one record trail.
pub fn classify_record(record: &ModelRecord) -> CurveShape {
    let vals: Vec<f64> = record.epochs.iter().map(|e| e.val_acc).collect();
    classify_curve(&vals)
}

/// Shape census of a commons: `(shape, count, early-termination count)`
/// per shape present, in taxonomy order.
pub fn shape_census(commons: &DataCommons) -> Vec<(CurveShape, usize, usize)> {
    let shapes = [
        CurveShape::Saturating,
        CurveShape::Accelerating,
        CurveShape::Flat,
        CurveShape::Erratic,
        CurveShape::TooShort,
    ];
    let mut counts = vec![(0usize, 0usize); shapes.len()];
    for r in &commons.records {
        let shape = classify_record(r);
        // `shapes` enumerates every CurveShape variant, in order.
        let idx = match shape {
            CurveShape::Saturating => 0,
            CurveShape::Accelerating => 1,
            CurveShape::Flat => 2,
            CurveShape::Erratic => 3,
            CurveShape::TooShort => 4,
        };
        counts[idx].0 += 1;
        if r.terminated_early() {
            counts[idx].1 += 1;
        }
    }
    shapes
        .into_iter()
        .zip(counts)
        .filter(|(_, (n, _))| *n > 0)
        .map(|(s, (n, e))| (s, n, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(f: impl Fn(usize) -> f64, n: usize) -> Vec<f64> {
        (1..=n).map(f).collect()
    }

    #[test]
    fn saturating_curve_detected() {
        let vals = curve(|e| 95.0 - 50.0 * 0.7f64.powi(e as i32), 20);
        assert_eq!(classify_curve(&vals), CurveShape::Saturating);
    }

    #[test]
    fn accelerating_curve_detected() {
        let vals = curve(|e| 50.0 + 0.08 * (e * e) as f64, 20);
        assert_eq!(classify_curve(&vals), CurveShape::Accelerating);
    }

    #[test]
    fn flat_curve_detected() {
        let vals = curve(|e| 50.0 + 0.5 * ((e % 3) as f64 - 1.0), 20);
        assert_eq!(classify_curve(&vals), CurveShape::Flat);
    }

    #[test]
    fn erratic_curve_detected() {
        let vals = curve(|e| 70.0 + if e % 2 == 0 { 12.0 } else { -12.0 }, 20);
        assert_eq!(classify_curve(&vals), CurveShape::Erratic);
    }

    #[test]
    fn short_curve_detected() {
        assert_eq!(classify_curve(&[50.0, 60.0, 70.0]), CurveShape::TooShort);
    }

    #[test]
    fn census_counts_every_record_once() {
        use crate::record::{EpochRecord, ModelRecord};
        use a4nn_genome::Genome;
        let make = |id: u64, f: &dyn Fn(usize) -> f64, n: usize| ModelRecord {
            model_id: id,
            generation: 0,
            gpu: None,
            genome: Genome::from_compact_string("0000000").unwrap(),
            arch_summary: String::new(),
            flops: 1.0,
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: None,
            epochs: (1..=n)
                .map(|e| EpochRecord {
                    epoch: e as u32,
                    train_acc: f(e),
                    val_acc: f(e),
                    duration_s: 1.0,
                    prediction: None,
                })
                .collect(),
            final_fitness: f(n),
            predicted_fitness: None,
            termination: if id.is_multiple_of(2) {
                crate::record::Terminated::Early
            } else {
                crate::record::Terminated::Completed
            },
            attempts: 1,
            beam: "low".into(),
            wall_time_s: n as f64,
        };
        let commons = crate::commons::DataCommons::new(vec![
            make(0, &|e| 95.0 - 50.0 * 0.7f64.powi(e as i32), 20),
            make(1, &|e| 50.0 + 0.08 * (e * e) as f64, 20),
            make(2, &|_| 50.0, 20),
        ]);
        let census = shape_census(&commons);
        let total: usize = census.iter().map(|(_, n, _)| n).sum();
        assert_eq!(total, 3);
        let early: usize = census.iter().map(|(_, _, e)| e).sum();
        assert_eq!(early, 2);
        assert!(census.iter().any(|(s, _, _)| *s == CurveShape::Flat));
    }
}
