//! Tabular exports of a data commons.
//!
//! The paper ships its Dataverse deposit with "a Python script
//! demonstrating how to load the data into a Pandas DataFrame" (§2.3) —
//! the equivalent affordance here is CSV export: one row per model
//! (summary) or one row per epoch (learning curves), both loading directly
//! into pandas/polars/R.

use crate::commons::DataCommons;
use std::fmt::Write as _;

/// One-row-per-model summary CSV.
///
/// Runs searched under the objective registry append one `obj_<name>`
/// column per configured objective (in objective order) after the fixed
/// columns. Commons written before the registry carry no objective
/// names, and their export stays byte-identical to the legacy 14-column
/// schema.
pub fn models_csv(commons: &DataCommons) -> String {
    let mut out = String::with_capacity(commons.len() * 96 + 128);
    // The objective columns of the run: the first tagged record's names
    // (every record of one run shares the configured set).
    let obj_names: Option<Vec<String>> = commons
        .records
        .iter()
        .find(|r| !r.objective_names.is_empty())
        .map(|r| r.objective_names.clone());
    out.push_str(
        "model_id,generation,gpu,beam,genome,flops_mflops,epochs_trained,final_fitness,\
         predicted_fitness,terminated_early,termination_epoch,wall_time_s,status,attempts",
    );
    if let Some(names) = &obj_names {
        for name in names {
            let _ = write!(out, ",obj_{name}");
        }
    }
    out.push('\n');
    for r in &commons.records {
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.model_id,
            r.generation,
            r.gpu.map(|g| g.to_string()).unwrap_or_default(),
            r.beam,
            r.genome.to_compact_string(),
            r.flops,
            r.epochs_trained(),
            r.final_fitness,
            r.predicted_fitness
                .map(|p| p.to_string())
                .unwrap_or_default(),
            r.terminated_early(),
            r.termination_epoch()
                .map(|e| e.to_string())
                .unwrap_or_default(),
            r.wall_time_s,
            r.termination.as_str(),
            r.attempts,
        );
        if let Some(names) = &obj_names {
            // A record from a foreign objective set (merged commons)
            // leaves its cells empty rather than misaligning columns.
            let vals = if r.objective_labels() == *names {
                r.objective_vector()
            } else {
                Vec::new()
            };
            for i in 0..names.len() {
                match vals.get(i) {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
        }
        out.push('\n');
    }
    out
}

/// One-row-per-epoch learning-curve CSV.
pub fn epochs_csv(commons: &DataCommons) -> String {
    let mut out = String::with_capacity(commons.len() * 25 * 48 + 64);
    out.push_str("model_id,epoch,train_acc,val_acc,duration_s,prediction\n");
    for r in &commons.records {
        for e in &r.epochs {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                r.model_id,
                e.epoch,
                e.train_acc,
                e.val_acc,
                e.duration_s,
                e.prediction.map(|p| p.to_string()).unwrap_or_default(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EpochRecord, ModelRecord, Terminated};
    use a4nn_genome::Genome;

    fn commons() -> DataCommons {
        DataCommons::new(vec![ModelRecord {
            model_id: 3,
            generation: 1,
            gpu: Some(2),
            genome: Genome::from_compact_string("1000001").unwrap(),
            arch_summary: "x".into(),
            flops: 123.5,
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: None,
            epochs: vec![
                EpochRecord {
                    epoch: 1,
                    train_acc: 60.0,
                    val_acc: 58.0,
                    duration_s: 2.0,
                    prediction: None,
                },
                EpochRecord {
                    epoch: 2,
                    train_acc: 70.0,
                    val_acc: 66.0,
                    duration_s: 2.1,
                    prediction: Some(91.5),
                },
            ],
            final_fitness: 91.5,
            predicted_fitness: Some(91.5),
            termination: Terminated::Early,
            attempts: 1,
            beam: "high".into(),
            wall_time_s: 4.1,
        }])
    }

    #[test]
    fn models_csv_has_header_and_row() {
        let csv = models_csv(&commons());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("model_id,generation,gpu,beam,genome"));
        assert_eq!(
            lines[1],
            "3,1,2,high,1000001,123.5,2,91.5,91.5,true,2,4.1,early,1"
        );
    }

    #[test]
    fn epochs_csv_one_row_per_epoch() {
        let csv = epochs_csv(&commons());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "3,1,60,58,2,");
        assert_eq!(lines[2], "3,2,70,66,2.1,91.5");
    }

    #[test]
    fn tagged_records_grow_named_objective_columns() {
        let mut commons = commons();
        let r = &mut commons.records[0];
        r.objective_names = vec!["neg_fitness".into(), "flops".into(), "peak_ws_bytes".into()];
        r.objective_values = vec![-91.5, 123.5, 4096.0];
        let csv = models_csv(&commons);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with(",obj_neg_fitness,obj_flops,obj_peak_ws_bytes"));
        assert!(lines[1].ends_with(",-91.5,123.5,4096"));
    }

    #[test]
    fn legacy_records_keep_the_14_column_schema() {
        // Pre-registry commons must export byte-identically to the old
        // exporter: no objective columns at all.
        let csv = models_csv(&commons());
        let header = csv.lines().next().unwrap();
        assert!(!header.contains("obj_"));
        assert_eq!(header.split(',').count(), 14);
    }

    #[test]
    fn foreign_objective_records_export_empty_cells() {
        let mut c = commons();
        let mut other = c.records[0].clone();
        other.model_id = 4;
        other.objective_names = vec!["neg_fitness".into(), "macs".into()];
        other.objective_values = vec![-91.5, 1e8];
        c.records.push(other);
        let csv = models_csv(&c);
        let lines: Vec<&str> = csv.lines().collect();
        // Header comes from the first tagged record (model 4).
        assert!(lines[0].ends_with(",obj_neg_fitness,obj_macs"));
        // The untagged legacy record reports the legacy pair, which has
        // different labels — its cells stay empty.
        assert!(lines[1].ends_with(",early,1,,"));
        assert!(lines[2].ends_with(",-91.5,100000000"));
    }

    #[test]
    fn empty_commons_exports_headers_only() {
        let empty = DataCommons::default();
        assert_eq!(models_csv(&empty).lines().count(), 1);
        assert_eq!(epochs_csv(&empty).lines().count(), 1);
    }

    #[test]
    fn field_counts_are_consistent() {
        let csv = models_csv(&commons());
        let header_fields = csv.lines().next().unwrap().split(',').count();
        for row in csv.lines().skip(1) {
            assert_eq!(row.split(',').count(), header_fields);
        }
    }
}
