//! # a4nn-lineage — lineage tracker and NN data commons
//!
//! §2.3: A4NN "rigorously record\[s\] neural architecture histories, model
//! states, and metadata to reproduce the search for near-optimal NNs."
//! This crate is that record system:
//!
//! - [`record`] — per-model record trails: genome, architecture summary,
//!   engine parameters, per-epoch fitness/prediction/duration entries,
//!   FLOPs, termination information, and the GPU that trained the model;
//! - [`commons`] — the data commons: a thread-safe in-memory tracker that
//!   concurrent trainers append to, plus an on-disk JSON layout (one file
//!   per model and a manifest) standing in for the paper's Harvard
//!   Dataverse deposit;
//! - [`analyzer`] — the analyzer: the query/aggregation API behind the
//!   paper's Jupyter-notebook analysis (Pareto extraction, termination
//!   distributions, epoch totals, FLOPs/accuracy correlation, attribute
//!   search);
//! - [`structure`] — structural analytics: fixed feature vectors over
//!   genomes, feature↔fitness correlations, and success-vs-rest contrasts
//!   (the conclusions' "structural similarities" question);
//! - [`export`] — CSV exports (per-model and per-epoch) matching the
//!   paper's "load into a DataFrame" affordance.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod analyzer;
pub mod commons;
pub mod curves;
pub mod export;
pub mod record;
pub mod structure;

pub use analyzer::Analyzer;
pub use commons::{write_atomic, DataCommons, LineageTracker};
pub use curves::{classify_curve, classify_record, shape_census, CurveShape};
pub use export::{epochs_csv, models_csv};
pub use record::{fitness_cmp, EngineParamsRecord, EpochRecord, ModelRecord, Terminated};
pub use structure::{feature_fitness_correlations, success_contrast, StructuralFeatures};
