//! Structural analytics over the architectures in a commons — the
//! machinery behind the conclusions' questions *"Are there structural
//! similarities between successful architectures produced by NAS?"* and
//! *"How can we visualize diverse neural architectures to identify
//! patterns in successful architectures?"*.
//!
//! Architectures are summarized into a fixed [`StructuralFeatures`] vector
//! (per-phase node/edge/skip counts plus genome density); the module
//! provides per-feature correlation against fitness and a
//! success-vs-failure contrast report.

use crate::commons::DataCommons;
use crate::record::ModelRecord;
use a4nn_genome::{Genome, PhaseGenome};
use serde::{Deserialize, Serialize};

/// Fixed-length structural description of one genome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuralFeatures {
    /// Total active nodes across phases.
    pub active_nodes: usize,
    /// Total edges across phases.
    pub edges: usize,
    /// Number of phases with the skip bit set.
    pub skips: usize,
    /// Fraction of genome bits set.
    pub density: f64,
    /// Per-phase active-node counts.
    pub nodes_per_phase: Vec<usize>,
    /// Per-phase edge counts.
    pub edges_per_phase: Vec<usize>,
    /// Longest chain (depth) over all phase DAGs.
    pub max_depth: usize,
}

impl StructuralFeatures {
    /// Extract features from a genome (decoding-free: works directly on
    /// the bit structure so it needs no search-space configuration).
    pub fn of(genome: &Genome) -> Self {
        let mut active_nodes = 0;
        let mut edges = 0;
        let mut skips = 0;
        let mut nodes_per_phase = Vec::with_capacity(genome.phases.len());
        let mut edges_per_phase = Vec::with_capacity(genome.phases.len());
        let mut max_depth = 0;
        let mut set_bits = 0usize;
        for phase in &genome.phases {
            let k = phase.nodes;
            let mut touched = vec![false; k];
            let mut phase_edges = 0;
            // depth[i] = longest path ending at node i (in edges).
            let mut depth = vec![0usize; k];
            for i in 0..k {
                for j in 0..i {
                    if phase.edge(j, i) {
                        touched[i] = true;
                        touched[j] = true;
                        phase_edges += 1;
                        depth[i] = depth[i].max(depth[j] + 1);
                    }
                }
            }
            let phase_nodes = touched.iter().filter(|&&t| t).count();
            active_nodes += phase_nodes;
            edges += phase_edges;
            skips += usize::from(phase.skip());
            max_depth = max_depth.max(depth.iter().copied().max().unwrap_or(0));
            nodes_per_phase.push(phase_nodes);
            edges_per_phase.push(phase_edges);
            set_bits += phase.bits.iter().filter(|&&b| b).count();
        }
        let total_bits: usize = genome
            .phases
            .iter()
            .map(|p| PhaseGenome::bits_for(p.nodes))
            .sum();
        StructuralFeatures {
            active_nodes,
            edges,
            skips,
            density: set_bits as f64 / total_bits.max(1) as f64,
            nodes_per_phase,
            edges_per_phase,
            max_depth,
        }
    }

    /// The scalar feature values with stable names, for correlation
    /// reports.
    pub fn named_scalars(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("active_nodes", self.active_nodes as f64),
            ("edges", self.edges as f64),
            ("skips", self.skips as f64),
            ("density", self.density),
            ("max_depth", self.max_depth as f64),
        ]
    }
}

/// Pearson correlation of each structural feature against final fitness.
pub fn feature_fitness_correlations(commons: &DataCommons) -> Vec<(&'static str, f64)> {
    let rows: Vec<(Vec<(&'static str, f64)>, f64)> = commons
        .records
        .iter()
        .map(|r| {
            (
                StructuralFeatures::of(&r.genome).named_scalars(),
                r.final_fitness,
            )
        })
        .collect();
    if rows.len() < 2 {
        return Vec::new();
    }
    let names: Vec<&'static str> = rows[0].0.iter().map(|(n, _)| *n).collect();
    names
        .into_iter()
        .enumerate()
        .map(|(fi, name)| {
            let xs: Vec<f64> = rows.iter().map(|(f, _)| f[fi].1).collect();
            let ys: Vec<f64> = rows.iter().map(|(_, y)| *y).collect();
            (name, pearson(&xs, &ys))
        })
        .collect()
}

/// Mean structural features of the `top_fraction` most fit models versus
/// the rest: the "what do successful architectures share?" contrast.
pub fn success_contrast(
    commons: &DataCommons,
    top_fraction: f64,
) -> Option<(StructuralMeans, StructuralMeans)> {
    assert!((0.0..=1.0).contains(&top_fraction), "fraction in [0,1]");
    if commons.records.len() < 2 {
        return None;
    }
    let mut sorted: Vec<&ModelRecord> = commons.records.iter().collect();
    sorted.sort_by(|a, b| crate::record::fitness_cmp(b.final_fitness, a.final_fitness));
    let cut = ((sorted.len() as f64 * top_fraction).round() as usize).clamp(1, sorted.len() - 1);
    let (top, rest) = sorted.split_at(cut);
    Some((StructuralMeans::of(top), StructuralMeans::of(rest)))
}

/// Mean scalar features over a set of records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuralMeans {
    /// Number of records averaged.
    pub count: usize,
    /// (feature name, mean value) pairs in [`StructuralFeatures::named_scalars`] order.
    pub means: Vec<(String, f64)>,
    /// Mean fitness of the group.
    pub mean_fitness: f64,
}

impl StructuralMeans {
    fn of(records: &[&ModelRecord]) -> Self {
        let n = records.len().max(1) as f64;
        let mut acc: Vec<(String, f64)> = Vec::new();
        let mut fitness = 0.0;
        for r in records {
            fitness += r.final_fitness;
            for (i, (name, v)) in StructuralFeatures::of(&r.genome)
                .named_scalars()
                .into_iter()
                .enumerate()
            {
                if acc.len() <= i {
                    acc.push((name.to_string(), 0.0));
                }
                acc[i].1 += v;
            }
        }
        for (_, v) in &mut acc {
            *v /= n;
        }
        StructuralMeans {
            count: records.len(),
            means: acc,
            mean_fitness: fitness / n,
        }
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EpochRecord;

    fn genome(bits21: &str) -> Genome {
        Genome::from_compact_string(bits21).unwrap()
    }

    fn record(id: u64, genome: Genome, fitness: f64) -> ModelRecord {
        ModelRecord {
            model_id: id,
            generation: 0,
            gpu: None,
            genome,
            arch_summary: String::new(),
            flops: 100.0,
            objective_names: Vec::new(),
            objective_values: Vec::new(),
            engine: None,
            epochs: vec![EpochRecord {
                epoch: 1,
                train_acc: fitness,
                val_acc: fitness,
                duration_s: 1.0,
                prediction: None,
            }],
            final_fitness: fitness,
            predicted_fitness: None,
            termination: crate::record::Terminated::Completed,
            attempts: 1,
            beam: "low".into(),
            wall_time_s: 1.0,
        }
    }

    #[test]
    fn features_of_empty_genome() {
        let f = StructuralFeatures::of(&genome("0000000-0000000-0000000"));
        assert_eq!(f.active_nodes, 0);
        assert_eq!(f.edges, 0);
        assert_eq!(f.skips, 0);
        assert_eq!(f.density, 0.0);
        assert_eq!(f.max_depth, 0);
    }

    #[test]
    fn features_count_chain() {
        // Phase 1: edges (0→1),(1→2),(2→3) = bits 0,2,5 set; skip set.
        let mut bits = vec!['0'; 7];
        bits[PhaseGenome::edge_bit_index(0, 1)] = '1';
        bits[PhaseGenome::edge_bit_index(1, 2)] = '1';
        bits[PhaseGenome::edge_bit_index(2, 3)] = '1';
        bits[6] = '1';
        let s: String = bits.into_iter().collect();
        let f = StructuralFeatures::of(&genome(&format!("{s}-0000000-0000000")));
        assert_eq!(f.active_nodes, 4);
        assert_eq!(f.edges, 3);
        assert_eq!(f.skips, 1);
        assert_eq!(f.max_depth, 3);
        assert!((f.density - 4.0 / 21.0).abs() < 1e-12);
        assert_eq!(f.nodes_per_phase, vec![4, 0, 0]);
        assert_eq!(f.edges_per_phase, vec![3, 0, 0]);
    }

    #[test]
    fn correlations_detect_planted_signal() {
        // Fitness grows with density by construction.
        let gs = [
            "0000000-0000000-0000000",
            "1000000-0000000-0000000",
            "1100000-1000000-0000000",
            "1110000-1100000-1000000",
            "1111100-1111000-1110000",
            "1111111-1111111-1111111",
        ];
        let commons = DataCommons::new(
            gs.iter()
                .enumerate()
                .map(|(i, g)| record(i as u64, genome(g), 50.0 + 8.0 * i as f64))
                .collect(),
        );
        let corr = feature_fitness_correlations(&commons);
        let density = corr.iter().find(|(n, _)| *n == "density").unwrap().1;
        assert!(density > 0.9, "density correlation {density}");
    }

    #[test]
    fn success_contrast_separates_groups() {
        let commons = DataCommons::new(vec![
            record(0, genome("1111111-1111111-1111111"), 99.0),
            record(1, genome("1111110-1111110-1111110"), 98.0),
            record(2, genome("0000000-0000000-0000000"), 55.0),
            record(3, genome("1000000-0000000-0000000"), 52.0),
        ]);
        let (top, rest) = success_contrast(&commons, 0.5).unwrap();
        assert_eq!(top.count, 2);
        assert_eq!(rest.count, 2);
        assert!(top.mean_fitness > rest.mean_fitness);
        let d_top = top.means.iter().find(|(n, _)| n == "density").unwrap().1;
        let d_rest = rest.means.iter().find(|(n, _)| n == "density").unwrap().1;
        assert!(d_top > d_rest);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = DataCommons::default();
        assert!(feature_fitness_correlations(&empty).is_empty());
        assert!(success_contrast(&empty, 0.2).is_none());
        let single = DataCommons::new(vec![record(0, genome("0000000"), 50.0)]);
        assert!(success_contrast(&single, 0.2).is_none());
    }
}
