//! Property-based tests of the training substrate.

use a4nn_nn::layers::{Conv2d, Dense};
use a4nn_nn::{augment_batch, cross_entropy, AugmentConfig, LrSchedule, Tensor2, Tensor4};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_image(n: usize, c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor4> {
    proptest::collection::vec(-2.0f32..2.0, n * c * h * w)
        .prop_map(move |data| Tensor4::from_vec(n, c, h, w, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Convolution (with zero bias) is linear: conv(αx + βy) = α·conv(x) + β·conv(y).
    #[test]
    fn conv_is_linear(
        x in arb_image(1, 1, 6, 6),
        y in arb_image(1, 1, 6, 6),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(1, 2, 3, &mut rng);
        conv.bias.iter_mut().for_each(|b| *b = 0.0);
        let mut combined = Tensor4::zeros(1, 1, 6, 6);
        for i in 0..combined.len() {
            combined.data_mut()[i] = alpha * x.data()[i] + beta * y.data()[i];
        }
        let out_combined = conv.forward(&combined);
        let out_x = conv.forward(&x);
        let out_y = conv.forward(&y);
        for i in 0..out_combined.len() {
            let expect = alpha * out_x.data()[i] + beta * out_y.data()[i];
            prop_assert!(
                (out_combined.data()[i] - expect).abs() < 1e-3,
                "index {}: {} vs {}", i, out_combined.data()[i], expect
            );
        }
    }

    /// Dense forward is affine in its input.
    #[test]
    fn dense_is_affine(
        xv in proptest::collection::vec(-2.0f32..2.0, 5),
        yv in proptest::collection::vec(-2.0f32..2.0, 5),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut dense = Dense::new(5, 3, &mut rng);
        let x = Tensor2::from_vec(1, 5, xv.clone());
        let y = Tensor2::from_vec(1, 5, yv.clone());
        let mid = Tensor2::from_vec(
            1, 5,
            xv.iter().zip(&yv).map(|(a, b)| (a + b) / 2.0).collect(),
        );
        let fx = dense.forward(&x);
        let fy = dense.forward(&y);
        let fmid = dense.forward(&mid);
        for i in 0..3 {
            let expect = (fx.data()[i] + fy.data()[i]) / 2.0;
            prop_assert!((fmid.data()[i] - expect).abs() < 1e-4);
        }
    }

    /// Cross-entropy loss is non-negative, gradient rows sum to ~0, and
    /// probabilities form a distribution.
    #[test]
    fn cross_entropy_invariants(
        logits in proptest::collection::vec(-20.0f32..20.0, 6),
        label in 0usize..3,
    ) {
        let t = Tensor2::from_vec(2, 3, logits);
        let out = cross_entropy(&t, &[label, (label + 1) % 3]);
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.loss.is_finite());
        for r in 0..2 {
            let psum: f32 = out.probs.row(r).iter().sum();
            prop_assert!((psum - 1.0).abs() < 1e-4);
            let gsum: f32 = out.dlogits.row(r).iter().sum();
            prop_assert!(gsum.abs() < 1e-5);
        }
    }

    /// Augmentation preserves the multiset of pixel values per sample.
    #[test]
    fn augmentation_is_a_permutation(img in arb_image(2, 1, 4, 4), seed in any::<u64>()) {
        let mut batch = img.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        augment_batch(&mut batch, AugmentConfig::full(), &mut rng);
        for n in 0..2 {
            let mut before: Vec<f32> = img.sample(n).to_vec();
            let mut after: Vec<f32> = batch.sample(n).to_vec();
            before.sort_by(f32::total_cmp);
            after.sort_by(f32::total_cmp);
            prop_assert_eq!(before, after);
        }
    }

    /// Learning-rate schedules always produce finite, non-negative rates
    /// bounded by their peak.
    #[test]
    fn schedules_are_bounded(
        lr in 1e-5f32..1.0,
        min_frac in 0.0f32..1.0,
        total in 1u32..100,
        epoch in 1u32..200,
    ) {
        let lr_min = lr * min_frac;
        for s in [
            LrSchedule::Constant { lr },
            LrSchedule::Cosine { lr_max: lr, lr_min, total_epochs: total },
            LrSchedule::Step { lr, step: 7, gamma: 0.5 },
        ] {
            let v = s.lr_at(epoch);
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
            prop_assert!(v <= lr * 1.0001, "{v} above peak {lr}");
        }
    }
}
