//! Differential tests: the GEMM-backed `Dense` backend must be **bitwise
//! identical** to the naive sequential-loop reference — forward, weight
//! gradient, bias gradient, and input gradient — for every shape and
//! every intra-op thread budget. `gemm_nn_seq` reproduces the naive
//! ascending-k accumulation order per element exactly, and the ±0.0
//! product terms the naive path skips cannot perturb an accumulator, so
//! equality here is exact, not approximate.

use a4nn_nn::gemm;
use a4nn_nn::layers::{Dense, DenseImpl};
use a4nn_nn::{NetSpec, Network, PhaseNetSpec, Tensor2, Tensor4, Workspace};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn fill_random(rng: &mut impl Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}[{i}]: {g} ({:#010x}) vs {w} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Run one forward + backward on both backends and compare every output
/// and accumulated gradient bit for bit.
fn check_pair(rows: usize, d_in: usize, d_out: usize, seed: u64, sparse_grad: bool) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut naive = Dense::new(d_in, d_out, &mut rng);
    let mut twin = naive.clone();
    naive.set_impl(DenseImpl::Naive);
    twin.set_impl(DenseImpl::Gemm);

    let x = Tensor2::from_vec(rows, d_in, fill_random(&mut rng, rows * d_in));
    let out_naive = naive.forward(&x);
    let out_gemm = twin.forward(&x);
    assert_bits_eq(out_gemm.data(), out_naive.data(), "forward");

    // Exercise the naive path's `go == 0.0` skip: ReLU-style gradients
    // are frequently exactly zero.
    let mut gvals = fill_random(&mut rng, rows * d_out);
    if sparse_grad {
        for v in gvals.iter_mut() {
            if *v < 0.3 {
                *v = 0.0;
            }
        }
    }
    let grad = Tensor2::from_vec(rows, d_out, gvals);
    let gin_naive = naive.backward(&grad);
    let gin_gemm = twin.backward(&grad);
    assert_bits_eq(gin_gemm.data(), gin_naive.data(), "input grad");

    let mut naive_grads: Vec<Vec<f32>> = Vec::new();
    naive.visit_params(&mut |_, g| naive_grads.push(g.to_vec()));
    let mut slot = 0;
    twin.visit_params(&mut |_, g| {
        assert_bits_eq(g, &naive_grads[slot], "param grad");
        slot += 1;
    });
    assert_eq!(slot, naive_grads.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes, including ones spanning several GEMM micro-tiles
    /// and the ragged edges below one tile.
    #[test]
    fn dense_backends_agree_bitwise(
        rows in 1usize..34,
        d_in in 1usize..40,
        d_out in 1usize..40,
        sparse in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        check_pair(rows, d_in, d_out, seed, sparse);
    }
}

/// Shapes crossing the blocked-GEMM panel boundaries (KC = 256, NR = 16,
/// MR = 4) where a panel-local accumulation order would diverge from the
/// strict sequential reference.
#[test]
fn panel_boundary_shapes_agree_bitwise() {
    for &(rows, d_in, d_out) in &[
        (1, 1, 1),
        (4, 16, 16),
        (5, 17, 33),
        (3, 300, 10),
        (2, 513, 40),
        (16, 257, 31),
    ] {
        check_pair(rows, d_in, d_out, 7 + rows as u64, true);
    }
}

/// The GEMM backend must produce identical bits under every thread
/// budget: rows split contiguously, each output element is owned by one
/// thread, and the per-element order never changes.
#[test]
fn dense_thread_budget_invariance() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut proto = Dense::new(48, 37, &mut rng);
    proto.set_impl(DenseImpl::Gemm);
    let x = Tensor2::from_vec(23, 48, fill_random(&mut rng, 23 * 48));
    let grad = Tensor2::from_vec(23, 37, fill_random(&mut rng, 23 * 37));

    let prev = gemm::thread_budget();
    let mut outs: Vec<(Tensor2, Tensor2, Vec<Vec<f32>>)> = Vec::new();
    for budget in [1usize, 2, 3, 8] {
        gemm::set_thread_budget(budget);
        let mut d = proto.clone();
        let out = d.forward(&x);
        let gin = d.backward(&grad);
        let mut grads = Vec::new();
        d.visit_params(&mut |_, g| grads.push(g.to_vec()));
        outs.push((out, gin, grads));
    }
    gemm::set_thread_budget(prev);
    for (i, (out, gin, grads)) in outs.iter().enumerate().skip(1) {
        assert_bits_eq(
            out.data(),
            outs[0].0.data(),
            &format!("forward budget #{i}"),
        );
        assert_bits_eq(gin.data(), outs[0].1.data(), &format!("grad budget #{i}"));
        for (s, g) in grads.iter().enumerate() {
            assert_bits_eq(g, &outs[0].2[s], &format!("param grad budget #{i}"));
        }
    }
}

/// Reusing a warm workspace (stale scratch contents) must not change a
/// single bit versus throwaway allocation: every scratch consumer fully
/// overwrites its buffer, and accumulation targets are re-zeroed.
#[test]
fn workspace_reuse_is_bitwise_transparent() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let mut fresh = Dense::new(30, 19, &mut rng);
    let mut warm = fresh.clone();
    let mut ws = Workspace::new();
    for step in 0..4 {
        let x = Tensor2::from_vec(9, 30, fill_random(&mut rng, 9 * 30));
        let grad = Tensor2::from_vec(9, 19, fill_random(&mut rng, 9 * 19));
        let out_fresh = fresh.forward(&x);
        let out_warm = warm.forward_ws(&x, &mut ws);
        assert_bits_eq(
            out_warm.data(),
            out_fresh.data(),
            &format!("step {step} forward"),
        );
        let gin_fresh = fresh.backward(&grad);
        let gin_warm = warm.backward_ws(&grad, &mut ws);
        assert_bits_eq(
            gin_warm.data(),
            gin_fresh.data(),
            &format!("step {step} grad"),
        );
        ws.give2(out_warm);
        ws.give2(gin_warm);
        drop((out_fresh, gin_fresh));
    }
    // The pool is warm after the first step: nothing allocated since.
    let after_first = ws.allocations();
    let x = Tensor2::from_vec(9, 30, fill_random(&mut rng, 9 * 30));
    let out = warm.forward_ws(&x, &mut ws);
    ws.give2(out);
    assert_eq!(ws.allocations(), after_first, "warm pool allocated");
}

fn tiny_spec() -> NetSpec {
    NetSpec {
        input_channels: 1,
        phases: vec![
            PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                node_inputs: vec![vec![], vec![0]],
                leaves: vec![1],
                skip: true,
            },
            PhaseNetSpec::degenerate(8, 3),
        ],
        num_classes: 3,
    }
}

/// Whole-network check: logits and every parameter gradient are bitwise
/// identical between dense backends after a training step.
#[test]
fn network_level_dense_backends_agree_bitwise() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let mut naive = Network::new(&tiny_spec(), &mut rng);
    let mut twin = naive.clone();
    naive.set_dense_impl(DenseImpl::Naive);
    twin.set_dense_impl(DenseImpl::Gemm);

    let x = Tensor4::from_vec(5, 1, 8, 8, fill_random(&mut rng, 5 * 8 * 8));
    let labels = [0usize, 1, 2, 0, 1];
    let logits_naive = naive.forward(&x, true);
    let logits_gemm = twin.forward(&x, true);
    assert_bits_eq(logits_gemm.data(), logits_naive.data(), "network logits");

    let out_naive = a4nn_nn::cross_entropy(&logits_naive, &labels);
    let out_gemm = a4nn_nn::cross_entropy(&logits_gemm, &labels);
    naive.backward(&out_naive.dlogits);
    twin.backward(&out_gemm.dlogits);

    let mut naive_grads: Vec<Vec<f32>> = Vec::new();
    naive.visit_params(&mut |_, g| naive_grads.push(g.to_vec()));
    let mut slot = 0;
    twin.visit_params(&mut |_, g| {
        assert_bits_eq(g, &naive_grads[slot], "network param grad");
        slot += 1;
    });
    assert_eq!(slot, naive_grads.len());
}
