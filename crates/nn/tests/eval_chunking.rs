//! Chunked-evaluation correctness: `Network::evaluate_chunked` must
//! return identical accuracy to a single whole-set forward for every
//! chunk size, including the empty-set and remainder-chunk edges, and
//! `evaluate_dataset` must agree with evaluating the materialized tensor.

use a4nn_nn::gemm;
use a4nn_nn::{Dataset, NetSpec, Network, PhaseNetSpec, Tensor4, Workspace};
use rand::{Rng, SeedableRng};

fn spec(classes: usize) -> NetSpec {
    NetSpec {
        input_channels: 1,
        phases: vec![
            PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                node_inputs: vec![vec![], vec![0]],
                leaves: vec![1],
                skip: true,
            },
            PhaseNetSpec::degenerate(6, 3),
        ],
        num_classes: classes,
    }
}

fn labeled_images(n: usize, classes: usize, seed: u64) -> (Tensor4, Vec<usize>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut images = Tensor4::zeros(n, 1, 8, 8);
    for v in images.data_mut() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
    let labels = (0..n).map(|i| i % classes).collect();
    (images, labels)
}

/// Whole-set accuracy via one forward, bypassing chunking entirely.
fn whole_set_accuracy(net: &mut Network, images: &Tensor4, labels: &[usize]) -> f32 {
    net.evaluate_chunked(images, labels, labels.len().max(1))
}

#[test]
fn chunk_sizes_agree_including_remainders() {
    let (images, labels) = labeled_images(23, 3, 5);
    let mut net = Network::new(&spec(3), &mut rand::rngs::StdRng::seed_from_u64(1));
    let want = whole_set_accuracy(&mut net, &images, &labels);
    // 1 = per-sample, 7 = remainder chunk (23 = 3·7 + 2), 23 = exact,
    // 64 = chunk larger than the set, 0 = clamped to 1.
    for chunk in [1usize, 7, 23, 64, 0] {
        let got = net.evaluate_chunked(&images, &labels, chunk);
        assert_eq!(got, want, "chunk {chunk}: {got} vs {want}");
    }
    // The default-chunk entry point agrees too.
    assert_eq!(net.evaluate(&images, &labels), want);
}

#[test]
fn chunking_is_thread_budget_invariant() {
    let (images, labels) = labeled_images(17, 2, 9);
    let mut net = Network::new(&spec(2), &mut rand::rngs::StdRng::seed_from_u64(2));
    let prev = gemm::thread_budget();
    gemm::set_thread_budget(1);
    let want = net.evaluate_chunked(&images, &labels, 4);
    for budget in [2usize, 3, 8] {
        gemm::set_thread_budget(budget);
        let got = net.evaluate_chunked(&images, &labels, 4);
        assert_eq!(got, want, "budget {budget}");
    }
    gemm::set_thread_budget(prev);
}

#[test]
fn empty_set_is_zero_for_every_chunk_size() {
    let mut net = Network::new(&spec(2), &mut rand::rngs::StdRng::seed_from_u64(3));
    for chunk in [0usize, 1, 8] {
        assert_eq!(
            net.evaluate_chunked(&Tensor4::zeros(0, 1, 8, 8), &[], chunk),
            0.0
        );
    }
    assert_eq!(net.evaluate(&Tensor4::zeros(0, 1, 8, 8), &[]), 0.0);
}

/// The fallible entry points make empty input a typed `Config` error so
/// serve-path callers can tell "nothing to evaluate" from 0% accuracy,
/// while agreeing bitwise with the infallible paths on non-empty input.
#[test]
fn try_variants_reject_empty_input_and_match_otherwise() {
    use a4nn_error::A4nnError;

    let mut net = Network::new(&spec(3), &mut rand::rngs::StdRng::seed_from_u64(3));
    for chunk in [0usize, 1, 8] {
        let err = net
            .try_evaluate_chunked(&Tensor4::zeros(0, 1, 8, 8), &[], chunk)
            .unwrap_err();
        assert!(matches!(err, A4nnError::Config(_)), "chunk {chunk}: {err}");
        assert_eq!(err.exit_code(), 3);
    }
    let mut ws = Workspace::new();
    let err = net
        .try_evaluate_dataset(&Dataset::empty(1, 8, 8), 7, &mut ws)
        .unwrap_err();
    assert!(matches!(err, A4nnError::Config(_)), "{err}");

    // Non-empty input: try_ and infallible paths agree bitwise.
    let (images, labels) = labeled_images(11, 3, 21);
    let want = net.evaluate_chunked(&images, &labels, 4);
    let got = net.try_evaluate_chunked(&images, &labels, 4).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());

    let mut ds = Dataset::empty(1, 8, 8);
    let stride = 64;
    for (i, &label) in labels.iter().enumerate() {
        ds.push(&images.data()[i * stride..(i + 1) * stride], label);
    }
    let want_ds = net.evaluate_dataset(&ds, 4, &mut ws);
    let got_ds = net.try_evaluate_dataset(&ds, 4, &mut ws).unwrap();
    assert_eq!(got_ds.to_bits(), want_ds.to_bits());
}

#[test]
fn evaluate_dataset_matches_materialized_tensor() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut ds = Dataset::empty(1, 8, 8);
    for i in 0..19 {
        let pixels: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        ds.push(&pixels, i % 3);
    }
    let mut net = Network::new(&spec(3), &mut rand::rngs::StdRng::seed_from_u64(4));
    let (images, labels) = ds.as_tensor();
    let want = whole_set_accuracy(&mut net, &images, labels);
    let mut ws = Workspace::new();
    for chunk in [1usize, 7, 19, 100] {
        let got = net.evaluate_dataset(&ds, chunk, &mut ws);
        assert_eq!(got, want, "chunk {chunk}");
    }
    // Warm workspace: a repeat evaluation allocates nothing further.
    let _ = net.evaluate_dataset(&ds, 7, &mut ws);
    let warm = ws.allocations();
    let _ = net.evaluate_dataset(&ds, 7, &mut ws);
    assert_eq!(ws.allocations(), warm, "steady-state eval allocated");

    // Empty dataset edge.
    assert_eq!(
        net.evaluate_dataset(&Dataset::empty(1, 8, 8), 7, &mut ws),
        0.0
    );
}
