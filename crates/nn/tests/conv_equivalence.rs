//! Differential tests: the im2col + blocked-GEMM convolution must agree
//! with a straight-line reference to ≤1e-4 — forward, weight gradient,
//! bias gradient, and input gradient — over random geometries including
//! strides and paddings the `Conv2d` layer itself never uses.

use a4nn_nn::gemm;
use a4nn_nn::im2col::{conv_backward, conv_forward, ConvGeometry};
use a4nn_nn::layers::{Conv2d, ConvImpl};
use a4nn_nn::Tensor4;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const TOL: f32 = 1e-4;

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

fn assert_all_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(close(*g, *w), "{what}[{i}]: {g} vs {w}");
    }
}

/// Direct 7-deep loop reference with general stride/padding.
fn naive_forward(
    x: &Tensor4,
    weight: &[f32],
    bias: &[f32],
    c_out: usize,
    g: &ConvGeometry,
) -> Tensor4 {
    let (oh, ow) = (g.out_h(), g.out_w());
    let k = g.kernel;
    let mut out = Tensor4::zeros(x.n, c_out, oh, ow);
    for ni in 0..x.n {
        for co in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[co];
                    for ci in 0..g.c_in {
                        for ky in 0..k {
                            let yy = (oy * g.stride + ky) as isize - g.pad as isize;
                            if yy < 0 || yy >= g.h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let xx = (ox * g.stride + kx) as isize - g.pad as isize;
                                if xx < 0 || xx >= g.w as isize {
                                    continue;
                                }
                                acc += x.get(ni, ci, yy as usize, xx as usize)
                                    * weight[((co * g.c_in + ci) * k + ky) * k + kx];
                            }
                        }
                    }
                    out.set(ni, co, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// Direct-loop reference gradients with general stride/padding.
#[allow(clippy::needless_range_loop)] // index-form loops mirror the 7-loop conv derivation
fn naive_backward(
    x: &Tensor4,
    grad_out: &Tensor4,
    weight: &[f32],
    c_out: usize,
    g: &ConvGeometry,
) -> (Tensor4, Vec<f32>, Vec<f32>) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let k = g.kernel;
    let mut gin = Tensor4::zeros(x.n, g.c_in, g.h, g.w);
    let mut wg = vec![0.0f32; weight.len()];
    let mut bg = vec![0.0f32; c_out];
    for ni in 0..x.n {
        for co in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = grad_out.get(ni, co, oy, ox);
                    bg[co] += gv;
                    for ci in 0..g.c_in {
                        for ky in 0..k {
                            let yy = (oy * g.stride + ky) as isize - g.pad as isize;
                            if yy < 0 || yy >= g.h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let xx = (ox * g.stride + kx) as isize - g.pad as isize;
                                if xx < 0 || xx >= g.w as isize {
                                    continue;
                                }
                                let widx = ((co * g.c_in + ci) * k + ky) * k + kx;
                                wg[widx] += x.get(ni, ci, yy as usize, xx as usize) * gv;
                                let gidx = gin.index(ni, ci, yy as usize, xx as usize);
                                gin.data_mut()[gidx] += weight[widx] * gv;
                            }
                        }
                    }
                }
            }
        }
    }
    (gin, wg, bg)
}

fn fill_random(rng: &mut impl Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// General-geometry lowering: forward + both gradients match the
    /// direct loops over random N/C/H/W/kernel/stride/padding.
    #[test]
    fn lowered_conv_matches_naive_reference(
        n in 1usize..3,
        c_in in 1usize..4,
        c_out in 1usize..4,
        h in 1usize..9,
        w in 1usize..9,
        kernel in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let g = ConvGeometry { c_in, h, w, kernel, stride, pad };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor4::from_vec(n, c_in, h, w, fill_random(&mut rng, n * c_in * h * w));
        let weight = fill_random(&mut rng, c_out * g.patch());
        let bias = fill_random(&mut rng, c_out);
        let grad = Tensor4::from_vec(
            n, c_out, g.out_h(), g.out_w(),
            fill_random(&mut rng, n * c_out * g.pixels()),
        );

        let fast = conv_forward(&x, &weight, &bias, &g);
        let slow = naive_forward(&x, &weight, &bias, c_out, &g);
        assert_all_close(fast.data(), slow.data(), "forward");

        let (gin_f, wg_f, bg_f) = conv_backward(&x, &grad, &weight, c_out, &g);
        let (gin_s, wg_s, bg_s) = naive_backward(&x, &grad, &weight, c_out, &g);
        assert_all_close(gin_f.data(), gin_s.data(), "input grad");
        assert_all_close(&wg_f, &wg_s, "weight grad");
        assert_all_close(&bg_f, &bg_s, "bias grad");
    }

    /// Layer-level equivalence: a `Conv2d` switched between its two
    /// backends produces the same activations and accumulated gradients.
    #[test]
    fn conv2d_backends_agree(
        n in 1usize..5,
        c_in in 1usize..4,
        c_out in 1usize..5,
        h in 2usize..10,
        w in 2usize..10,
        k_half in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let kernel = 2 * k_half + 1; // layer requires an odd kernel
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(c_in, c_out, kernel, &mut rng);
        let mut twin = conv.clone();
        conv.set_impl(ConvImpl::Naive);
        twin.set_impl(ConvImpl::Im2colGemm);

        let x = Tensor4::from_vec(n, c_in, h, w, fill_random(&mut rng, n * c_in * h * w));
        let out_naive = conv.forward(&x);
        let out_gemm = twin.forward(&x);
        assert_all_close(out_gemm.data(), out_naive.data(), "layer forward");

        let grad = Tensor4::from_vec(n, c_out, h, w, fill_random(&mut rng, n * c_out * h * w));
        let gin_naive = conv.backward(&grad);
        let gin_gemm = twin.backward(&grad);
        assert_all_close(gin_gemm.data(), gin_naive.data(), "layer input grad");

        let mut naive_grads: Vec<Vec<f32>> = Vec::new();
        conv.visit_params(&mut |_, g| naive_grads.push(g.to_vec()));
        let mut slot = 0;
        twin.visit_params(&mut |_, g| {
            assert_all_close(g, &naive_grads[slot], "layer param grad");
            slot += 1;
        });
    }
}

/// The paper's input geometry (128×128 XFEL images) through both layer
/// backends, and thread-budget invariance of the fast path: the result is
/// bitwise identical whatever the intra-op budget.
#[test]
fn paper_shape_agrees_and_is_budget_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2023);
    let mut conv = Conv2d::new(1, 8, 3, &mut rng);
    let x = Tensor4::from_vec(4, 1, 128, 128, fill_random(&mut rng, 4 * 128 * 128));
    conv.set_impl(ConvImpl::Naive);
    let want = conv.forward(&x);

    let prev = gemm::thread_budget();
    let mut outs = Vec::new();
    for budget in [1usize, 2, 4] {
        gemm::set_thread_budget(budget);
        let mut fast = conv.clone();
        fast.set_impl(ConvImpl::Im2colGemm);
        outs.push(fast.forward(&x));
    }
    gemm::set_thread_budget(prev);
    assert_all_close(outs[0].data(), want.data(), "paper-shape forward");
    assert_eq!(outs[0].data(), outs[1].data(), "budget 1 vs 2 differ");
    assert_eq!(outs[0].data(), outs[2].data(), "budget 1 vs 4 differ");
}
