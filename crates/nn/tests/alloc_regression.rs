//! Allocation-regression guard: after the workspace pool warms up, a
//! steady-state training batch must perform **zero** heap allocations.
//!
//! A counting wrapper around the system allocator is installed as the
//! global allocator for this test binary only (one test per binary, so
//! the counter sees nothing but the training loop under measurement).
//! The thread budget is pinned to 1 because spawning scoped threads
//! allocates stack bookkeeping; single-thread is also the configuration
//! the search-throughput bench measures.

use a4nn_nn::{gemm, Dataset, NetSpec, Network, PhaseNetSpec, Sgd, Workspace};
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves (or grows in place) is still allocator
        // traffic the hot path must not generate.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn spec() -> NetSpec {
    NetSpec {
        input_channels: 1,
        phases: vec![
            PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                node_inputs: vec![vec![], vec![0]],
                leaves: vec![1],
                skip: true,
            },
            PhaseNetSpec::degenerate(8, 3),
        ],
        num_classes: 3,
    }
}

fn dataset(n: usize) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut ds = Dataset::empty(1, 8, 8);
    for i in 0..n {
        let pixels: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        ds.push(&pixels, i % 3);
    }
    ds
}

/// One epoch body without the shuffle (the per-epoch shuffle allocates
/// its order vector by design; the guarantee is per *batch*): gather,
/// forward, loss, backward, optimizer step, all through the workspace.
fn train_batches(
    net: &mut Network,
    opt: &mut Sgd,
    ds: &Dataset,
    batch: usize,
    rng: &mut impl Rng,
    ws: &mut Workspace,
) {
    let _ = a4nn_nn::train_epoch_ws(net, opt, ds, batch, rng, ws);
}

#[test]
fn steady_state_training_batch_allocates_nothing() {
    let prev = gemm::thread_budget();
    gemm::set_thread_budget(1);

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let ds = dataset(24);
    let mut net = Network::new(&spec(), &mut rng);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut ws = Workspace::new();

    // Warmup: several epochs so every code path (full batch, remainder
    // batch, optimizer lazy buffers) has allocated whatever it ever will.
    for _ in 0..3 {
        train_batches(&mut net, &mut opt, &ds, 8, &mut rng, &mut ws);
    }

    // The epoch-level shuffle allocates one order vector; measure it so
    // the per-batch assertion below can subtract a known ceiling.
    let pool_before = ws.allocations();
    let before = allocation_count();
    train_batches(&mut net, &mut opt, &ds, 8, &mut rng, &mut ws);
    let epoch_allocs = allocation_count() - before;
    assert_eq!(
        ws.allocations(),
        pool_before,
        "workspace pool allocated at steady state"
    );

    // 24 samples at batch 8 = 3 batches per epoch. The shuffle's order
    // vector (and its shuffling scratch) is the only permitted traffic —
    // a small per-EPOCH constant. If any per-BATCH path allocated even
    // once, the count would be >= 3.
    assert!(
        epoch_allocs < 3,
        "steady-state epoch performed {epoch_allocs} heap allocations \
         (> per-epoch shuffle budget); a per-batch allocation crept back in"
    );

    gemm::set_thread_budget(prev);
}
