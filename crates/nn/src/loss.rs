//! Softmax cross-entropy loss.

use crate::tensor::Tensor2;
use crate::workspace::Workspace;

/// Output of [`cross_entropy`].
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient with respect to the logits (already divided by batch size).
    pub dlogits: Tensor2,
    /// Softmax probabilities (row per sample).
    pub probs: Tensor2,
    /// Number of argmax-correct predictions.
    pub correct: usize,
}

/// Numerically stable softmax cross-entropy with integer class labels.
/// Convenience wrapper over [`cross_entropy_ws`] with a throwaway
/// workspace.
pub fn cross_entropy(logits: &Tensor2, labels: &[usize]) -> CrossEntropyOutput {
    cross_entropy_ws(logits, labels, &mut Workspace::default())
}

/// [`cross_entropy`] drawing `probs` and `dlogits` from `ws`; recycle
/// them with [`Workspace::give2`] when done. Every element of both
/// matrices is overwritten, so scratch reuse cannot change results.
pub fn cross_entropy_ws(
    logits: &Tensor2,
    labels: &[usize],
    ws: &mut Workspace,
) -> CrossEntropyOutput {
    assert_eq!(logits.rows, labels.len(), "one label per row required");
    let n = logits.rows.max(1);
    let mut probs = ws.t2_scratch(logits.rows, logits.cols);
    let mut dlogits = ws.t2_scratch(logits.rows, logits.cols);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        assert!(label < logits.cols, "label {label} out of range");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            probs.set(r, c, e);
            denom += e;
        }
        let mut argmax = 0;
        let mut best = f32::NEG_INFINITY;
        for c in 0..logits.cols {
            let p = probs.get(r, c) / denom;
            probs.set(r, c, p);
            let delta = if c == label { 1.0 } else { 0.0 };
            dlogits.set(r, c, (p - delta) / n as f32);
            if p > best {
                best = p;
                argmax = c;
            }
        }
        if argmax == label {
            correct += 1;
        }
        loss -= f64::from(probs.get(r, label).max(1e-12).ln());
    }
    CrossEntropyOutput {
        loss: (loss / n as f64) as f32,
        dlogits,
        probs,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_ln_k_loss() {
        let logits = Tensor2::zeros(4, 3);
        let out = cross_entropy(&logits, &[0, 1, 2, 0]);
        assert!((out.loss - 3.0f32.ln()).abs() < 1e-5);
        // Uniform probabilities.
        for r in 0..4 {
            for c in 0..3 {
                assert!((out.probs.get(r, c) - 1.0 / 3.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor2::from_vec(1, 2, vec![10.0, -10.0]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-4);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn confident_wrong_prediction_has_high_loss() {
        let logits = Tensor2::from_vec(1, 2, vec![10.0, -10.0]);
        let out = cross_entropy(&logits, &[1]);
        assert!(out.loss > 5.0);
        assert_eq!(out.correct, 0);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let out = cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = out.dlogits.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let base = vec![0.3f32, -0.7, 1.2];
        let labels = [1usize];
        let out = cross_entropy(&Tensor2::from_vec(1, 3, base.clone()), &labels);
        let h = 1e-3f32;
        for i in 0..3 {
            let mut plus = base.clone();
            let mut minus = base.clone();
            plus[i] += h;
            minus[i] -= h;
            let lp = cross_entropy(&Tensor2::from_vec(1, 3, plus), &labels).loss;
            let lm = cross_entropy(&Tensor2::from_vec(1, 3, minus), &labels).loss;
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (numeric - out.dlogits.get(0, i)).abs() < 1e-3,
                "logit {i}: numeric {numeric} vs {}",
                out.dlogits.get(0, i)
            );
        }
    }

    #[test]
    fn extreme_logits_do_not_overflow() {
        let logits = Tensor2::from_vec(1, 2, vec![1e4, -1e4]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.dlogits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor2::zeros(1, 2);
        let _ = cross_entropy(&logits, &[5]);
    }
}
