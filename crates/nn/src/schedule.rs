//! Learning-rate schedules.
//!
//! NSGA-Net's reference training uses cosine annealing; step decay is the
//! other schedule commonly paired with SGD on this workload. Schedules are
//! pure functions of the epoch so trainers stay stateless about them.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule over 1-based epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Cosine annealing from `lr_max` down to `lr_min` over `total_epochs`.
    Cosine {
        /// Peak rate (epoch 1).
        lr_max: f32,
        /// Floor rate (final epoch).
        lr_min: f32,
        /// Horizon of the anneal.
        total_epochs: u32,
    },
    /// Multiply by `gamma` every `step` epochs.
    Step {
        /// Initial rate.
        lr: f32,
        /// Epochs between decays.
        step: u32,
        /// Decay factor per step.
        gamma: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (1-based).
    pub fn lr_at(&self, epoch: u32) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Cosine {
                lr_max,
                lr_min,
                total_epochs,
            } => {
                let t = (epoch.saturating_sub(1)) as f32
                    / (total_epochs.saturating_sub(1)).max(1) as f32;
                let t = t.min(1.0);
                lr_min + 0.5 * (lr_max - lr_min) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Step { lr, step, gamma } => {
                let decays = (epoch.saturating_sub(1)) / step.max(1);
                lr * gamma.powi(decays as i32)
            }
        }
    }
}

impl Default for LrSchedule {
    fn default() -> Self {
        LrSchedule::Constant { lr: 0.05 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.lr_at(1), 0.1);
        assert_eq!(s.lr_at(100), 0.1);
    }

    #[test]
    fn cosine_spans_max_to_min() {
        let s = LrSchedule::Cosine {
            lr_max: 0.1,
            lr_min: 0.001,
            total_epochs: 25,
        };
        assert!((s.lr_at(1) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(25) - 0.001).abs() < 1e-6);
        // Monotone decreasing.
        let mut prev = s.lr_at(1);
        for e in 2..=25 {
            let cur = s.lr_at(e);
            assert!(cur <= prev + 1e-7, "epoch {e}: {cur} > {prev}");
            prev = cur;
        }
        // Past the horizon it clamps at the floor.
        assert!((s.lr_at(40) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = LrSchedule::Step {
            lr: 0.8,
            step: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(1), 0.8);
        assert_eq!(s.lr_at(10), 0.8);
        assert_eq!(s.lr_at(11), 0.4);
        assert_eq!(s.lr_at(21), 0.2);
    }

    #[test]
    fn degenerate_horizons_are_safe() {
        let s = LrSchedule::Cosine {
            lr_max: 0.1,
            lr_min: 0.01,
            total_epochs: 1,
        };
        assert!(s.lr_at(1).is_finite());
        let st = LrSchedule::Step {
            lr: 0.1,
            step: 0,
            gamma: 0.5,
        };
        assert!(st.lr_at(5).is_finite());
    }
}
