//! Weight initialization schemes.

use rand::Rng;

/// He (Kaiming) normal initialization for ReLU networks: samples from
/// `N(0, sqrt(2 / fan_in))`. Uses Box–Muller on the caller's RNG so the
/// whole network is reproducible from one seed.
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, out: &mut [f32]) {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    fill_normal(rng, std, out);
}

/// Xavier/Glorot normal initialization: `N(0, sqrt(2 / (fan_in + fan_out)))`.
pub fn xavier_normal<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize, out: &mut [f32]) {
    let std = (2.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    fill_normal(rng, std, out);
}

fn fill_normal<R: Rng + ?Sized>(rng: &mut R, std: f64, out: &mut [f32]) {
    let mut i = 0;
    while i < out.len() {
        // Box–Muller transform produces two independent normals.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out[i] = (r * theta.cos() * std) as f32;
        i += 1;
        if i < out.len() {
            out[i] = (r * theta.sin() * std) as f32;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_normal_has_expected_std() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let fan_in = 128;
        let mut buf = vec![0.0f32; 40_000];
        he_normal(&mut rng, fan_in, &mut buf);
        let mean: f64 = buf.iter().map(|&v| f64::from(v)).sum::<f64>() / buf.len() as f64;
        let var: f64 = buf
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / buf.len() as f64;
        let expected = 2.0 / fan_in as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.08,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        he_normal(&mut rand::rngs::StdRng::seed_from_u64(5), 16, &mut a);
        he_normal(&mut rand::rngs::StdRng::seed_from_u64(5), 16, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_narrower_for_larger_fans() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut wide = vec![0.0f32; 10_000];
        let mut narrow = vec![0.0f32; 10_000];
        xavier_normal(&mut rng, 8, 8, &mut wide);
        xavier_normal(&mut rng, 512, 512, &mut narrow);
        let spread = |v: &[f32]| v.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>();
        assert!(spread(&narrow) < spread(&wide));
    }

    #[test]
    fn odd_lengths_are_fully_filled() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut buf = vec![0.0f32; 7];
        he_normal(&mut rng, 4, &mut buf);
        // Statistically, none of the 7 normals should be exactly 0.
        assert!(buf.iter().all(|&v| v != 0.0));
    }
}
