//! Dense `f32` tensors: 4-D NCHW activations and 2-D matrices.
//!
//! Deliberately minimal — contiguous `Vec<f32>` storage, inline index
//! arithmetic, no strides or views. Shapes are validated on construction
//! and preserved by every operation, so shape bugs surface at the boundary
//! rather than as silent corruption (debug assertions guard the hot
//! indexing paths per the perf-book guidance).

use serde::{Deserialize, Serialize};

/// A 4-D tensor in NCHW layout (batch, channels, height, width).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f32>,
}

/// `n·c·h·w` with overflow detection: a wrapped product in release mode
/// would silently allocate a wrong-sized tensor.
fn checked_len(n: usize, c: usize, h: usize, w: usize) -> usize {
    n.checked_mul(c)
        .and_then(|v| v.checked_mul(h))
        .and_then(|v| v.checked_mul(w))
        .unwrap_or_else(|| panic!("tensor shape {n}x{c}x{h}x{w} overflows usize element count"))
}

impl Tensor4 {
    /// Zero-filled tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; checked_len(n, c, h, w)],
        }
    }

    /// Wrap existing data; length must equal `n·c·h·w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            checked_len(n, c, h, w),
            "tensor data length mismatch"
        );
        Tensor4 { n, c, h, w, data }
    }

    /// Shape tuple.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat element index of `(n, c, h, w)`.
    #[inline(always)]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Element accessor.
    #[inline(always)]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(n, c, h, w)]
    }

    /// Mutable element accessor.
    #[inline(always)]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Raw data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The contiguous slice holding sample `n` (all channels).
    #[inline]
    pub fn sample(&self, n: usize) -> &[f32] {
        let stride = self.c * self.h * self.w;
        &self.data[n * stride..(n + 1) * stride]
    }

    /// Mutable per-sample slice.
    #[inline]
    pub fn sample_mut(&mut self, n: usize) -> &mut [f32] {
        let stride = self.c * self.h * self.w;
        &mut self.data[n * stride..(n + 1) * stride]
    }

    /// Consume the tensor, returning its backing storage (for recycling
    /// into a [`crate::workspace::Workspace`]).
    #[inline]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reshape in place to `n×c×h×w`, keeping the allocation. Contents
    /// are arbitrary afterwards (callers overwrite every element).
    pub fn reset(&mut self, n: usize, c: usize, h: usize, w: usize) {
        let len = checked_len(n, c, h, w);
        if self.data.len() > len {
            self.data.truncate(len);
        } else {
            self.data.resize(len, 0.0);
        }
        self.n = n;
        self.c = c;
        self.h = h;
        self.w = w;
    }

    /// Elementwise `self += other`; shapes must match.
    pub fn add_assign(&mut self, other: &Tensor4) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Fill with zeros, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// A 2-D row-major matrix (rows = batch, cols = features).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wrap existing data; length must be `rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Tensor2 { rows, cols, data }
    }

    /// Element accessor.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consume the matrix, returning its backing storage (for recycling
    /// into a [`crate::workspace::Workspace`]).
    #[inline]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_index_layout() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t.set(1, 2, 3, 4, 7.0);
        // Last element of the tensor.
        assert_eq!(t.data()[2 * 3 * 4 * 5 - 1], 7.0);
        assert_eq!(t.get(1, 2, 3, 4), 7.0);
        assert_eq!(t.index(0, 0, 0, 1), 1); // w is innermost
        assert_eq!(t.index(0, 0, 1, 0), 5); // then h
        assert_eq!(t.index(0, 1, 0, 0), 20); // then c
        assert_eq!(t.index(1, 0, 0, 0), 60); // then n
    }

    #[test]
    fn sample_slices_partition_the_batch() {
        let mut t = Tensor4::zeros(3, 2, 2, 2);
        t.sample_mut(1).iter_mut().for_each(|v| *v = 1.0);
        assert!(t.sample(0).iter().all(|&v| v == 0.0));
        assert!(t.sample(1).iter().all(|&v| v == 1.0));
        assert!(t.sample(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn add_assign_adds_elementwise() {
        let mut a = Tensor4::from_vec(1, 1, 1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor4::from_vec(1, 1, 1, 3, vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_rejects_shape_mismatch() {
        let mut a = Tensor4::zeros(1, 1, 2, 2);
        let b = Tensor4::zeros(1, 1, 2, 3);
        a.add_assign(&b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_validates_length() {
        let _ = Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "overflows usize element count")]
    fn zeros_rejects_overflowing_shape() {
        let _ = Tensor4::zeros(usize::MAX / 2, 4, 2, 2);
    }

    #[test]
    #[should_panic(expected = "overflows usize element count")]
    fn from_vec_rejects_overflowing_shape() {
        let _ = Tensor4::from_vec(usize::MAX, 2, 1, 1, vec![0.0; 4]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t = Tensor4::from_vec(1, 1, 1, 4, vec![1.0; 4]);
        t.clear();
        assert!(t.data().iter().all(|&v| v == 0.0));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn matrix_rows_are_contiguous() {
        let m = Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn tensor_serde_roundtrip() {
        let t = Tensor4::from_vec(1, 2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor4 = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
