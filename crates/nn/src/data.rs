//! Labeled image datasets and minibatch iteration.

use crate::tensor::Tensor4;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labeled set of single- or multi-channel images.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Flattened image data, sample-major (`len = n · c · h · w`).
    pub images: Vec<f32>,
    /// One class label per sample.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Create an empty dataset with the given geometry.
    pub fn empty(channels: usize, height: usize, width: usize) -> Self {
        Dataset {
            channels,
            height,
            width,
            images: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Elements per sample.
    pub fn sample_stride(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Append one image; `pixels.len()` must equal
    /// [`sample_stride`](Self::sample_stride).
    pub fn push(&mut self, pixels: &[f32], label: usize) {
        assert_eq!(pixels.len(), self.sample_stride(), "pixel count mismatch");
        self.images.extend_from_slice(pixels);
        self.labels.push(label);
    }

    /// Materialize the samples at `indices` as a batch tensor plus labels.
    pub fn gather(&self, indices: &[usize]) -> (Tensor4, Vec<usize>) {
        let stride = self.sample_stride();
        let mut batch = Tensor4::zeros(indices.len(), self.channels, self.height, self.width);
        let mut labels = Vec::with_capacity(indices.len());
        for (b, &i) in indices.iter().enumerate() {
            batch
                .sample_mut(b)
                .copy_from_slice(&self.images[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        (batch, labels)
    }

    /// Gather the samples at `indices` into caller-owned buffers,
    /// reshaping `batch` in place — the zero-allocation counterpart of
    /// [`gather`](Self::gather) once `batch`/`labels` capacities have
    /// warmed up.
    pub fn gather_into(&self, indices: &[usize], batch: &mut Tensor4, labels: &mut Vec<usize>) {
        let stride = self.sample_stride();
        batch.reset(indices.len(), self.channels, self.height, self.width);
        labels.clear();
        for (b, &i) in indices.iter().enumerate() {
            batch
                .sample_mut(b)
                .copy_from_slice(&self.images[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
    }

    /// Copy the contiguous sample range `start..end` into `batch`,
    /// reshaping it in place (chunked evaluation without materializing
    /// the whole set).
    pub fn copy_range_into(&self, start: usize, end: usize, batch: &mut Tensor4) {
        assert!(
            start <= end && end <= self.len(),
            "sample range out of bounds"
        );
        let stride = self.sample_stride();
        batch.reset(end - start, self.channels, self.height, self.width);
        batch
            .data_mut()
            .copy_from_slice(&self.images[start * stride..end * stride]);
    }

    /// Materialize the whole dataset as one tensor (for evaluation).
    pub fn as_tensor(&self) -> (Tensor4, &[usize]) {
        let all: Vec<usize> = (0..self.len()).collect();
        let (t, _) = self.gather(&all);
        (t, &self.labels)
    }

    /// Split off the last `fraction` of samples into a second dataset
    /// (e.g. `0.2` for the paper's 80/20 train/test split). The split is
    /// positional; shuffle first if ordering is meaningful.
    pub fn split(mut self, fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let n_tail = (self.len() as f64 * fraction).round() as usize;
        let n_head = self.len() - n_tail;
        let stride = self.sample_stride();
        let tail = Dataset {
            channels: self.channels,
            height: self.height,
            width: self.width,
            images: self.images.split_off(n_head * stride),
            labels: self.labels.split_off(n_head),
        };
        (self, tail)
    }

    /// Shuffle sample order in place.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let (t, labels) = self.gather(&order);
        self.images = t.data().to_vec();
        self.labels = labels;
    }

    /// Iterator over shuffled minibatches for one epoch.
    pub fn shuffled_batches<'a, R: Rng + ?Sized>(
        &'a self,
        batch_size: usize,
        rng: &mut R,
    ) -> BatchIter<'a> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        BatchIter {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Per-class sample counts (indexed by label).
    pub fn class_counts(&self) -> Vec<usize> {
        let max = self.labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![0usize; max];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// Minibatch iterator produced by [`Dataset::shuffled_batches`].
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter<'_> {
    /// Advance to the next minibatch, gathering into caller-owned
    /// buffers instead of allocating. Returns `false` when the epoch is
    /// exhausted (buffers are left untouched).
    pub fn next_into(&mut self, batch: &mut Tensor4, labels: &mut Vec<usize>) -> bool {
        if self.cursor >= self.order.len() {
            return false;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        self.dataset
            .gather_into(&self.order[self.cursor..end], batch, labels);
        self.cursor = end;
        true
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor4, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.dataset.gather(&self.order[self.cursor..end]);
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn dataset(n: usize) -> Dataset {
        let mut d = Dataset::empty(1, 2, 2);
        for i in 0..n {
            d.push(&[i as f32; 4], i % 2);
        }
        d
    }

    #[test]
    fn push_and_gather_roundtrip() {
        let d = dataset(5);
        let (batch, labels) = d.gather(&[3, 1]);
        assert_eq!(batch.shape(), (2, 1, 2, 2));
        assert_eq!(batch.sample(0), &[3.0; 4]);
        assert_eq!(batch.sample(1), &[1.0; 4]);
        assert_eq!(labels, vec![1, 1]);
    }

    #[test]
    fn split_80_20() {
        let (train, test) = dataset(10).split(0.2);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        // Tail samples preserved in order.
        assert_eq!(test.gather(&[0]).0.sample(0), &[8.0; 4]);
    }

    #[test]
    fn split_edge_fractions() {
        let (a, b) = dataset(4).split(0.0);
        assert_eq!((a.len(), b.len()), (4, 0));
        let (a, b) = dataset(4).split(1.0);
        assert_eq!((a.len(), b.len()), (0, 4));
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = dataset(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = Vec::new();
        for (batch, labels) in d.shuffled_batches(3, &mut rng) {
            assert!(batch.n <= 3);
            assert_eq!(batch.n, labels.len());
            for b in 0..batch.n {
                seen.push(batch.sample(b)[0] as usize);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let mut a = dataset(16);
        let mut b = dataset(16);
        a.shuffle(&mut rand::rngs::StdRng::seed_from_u64(9));
        b.shuffle(&mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.images, b.images);
    }

    #[test]
    fn class_counts_balanced() {
        let d = dataset(10);
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    fn gather_into_matches_gather() {
        let d = dataset(6);
        let (want_t, want_l) = d.gather(&[4, 0, 2]);
        let mut batch = Tensor4::zeros(0, 0, 0, 0);
        let mut labels = Vec::new();
        d.gather_into(&[4, 0, 2], &mut batch, &mut labels);
        assert_eq!(batch, want_t);
        assert_eq!(labels, want_l);
        // Reuse with a different batch size: shape follows the indices.
        d.gather_into(&[1], &mut batch, &mut labels);
        assert_eq!(batch.shape(), (1, 1, 2, 2));
        assert_eq!(labels, vec![1]);
    }

    #[test]
    fn next_into_matches_iterator() {
        let d = dataset(10);
        let a = d.shuffled_batches(3, &mut rand::rngs::StdRng::seed_from_u64(4));
        let mut b = d.shuffled_batches(3, &mut rand::rngs::StdRng::seed_from_u64(4));
        let mut batch = Tensor4::zeros(0, 0, 0, 0);
        let mut labels = Vec::new();
        for (want_t, want_l) in a {
            assert!(b.next_into(&mut batch, &mut labels));
            assert_eq!(batch, want_t);
            assert_eq!(labels, want_l);
        }
        assert!(!b.next_into(&mut batch, &mut labels));
    }

    #[test]
    fn copy_range_into_extracts_contiguous_samples() {
        let d = dataset(5);
        let mut batch = Tensor4::zeros(0, 0, 0, 0);
        d.copy_range_into(2, 5, &mut batch);
        assert_eq!(batch.shape(), (3, 1, 2, 2));
        assert_eq!(batch.sample(0), &[2.0; 4]);
        assert_eq!(batch.sample(2), &[4.0; 4]);
        d.copy_range_into(0, 0, &mut batch);
        assert_eq!(batch.shape(), (0, 1, 2, 2));
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn push_wrong_size_panics() {
        let mut d = Dataset::empty(1, 2, 2);
        d.push(&[0.0; 3], 0);
    }
}
