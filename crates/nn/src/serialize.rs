//! Model checkpointing.
//!
//! §2.2.2: "the workflow orchestrator writes the partially trained NN's
//! state to memory, such that each model can be loaded and re-evaluated
//! from any point in the training phase." A [`ModelState`] is that
//! state: the spec plus every parameter and batch-norm statistic, with a
//! compact binary wire format (via [`bytes`]) and serde support for JSON
//! record trails.

use crate::graph::{NetSpec, Network};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a network's trainable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelState {
    /// The architecture spec.
    pub spec: NetSpec,
    /// Flattened parameter tensors in visit order (including running
    /// batch-norm statistics captured separately by the snapshotting
    /// network clone).
    pub params: Vec<Vec<f32>>,
    /// Epoch at which the snapshot was taken (0 = initialization).
    pub epoch: u32,
}

impl ModelState {
    /// Capture the current state of `net`.
    pub fn capture(net: &mut Network, epoch: u32) -> Self {
        let mut params = Vec::new();
        net.visit_params(&mut |p, _| params.push(p.to_vec()));
        ModelState {
            spec: net.spec().clone(),
            params,
            epoch,
        }
    }

    /// Rebuild a network carrying this state. The RNG seeds the transient
    /// construction only; all trainable parameters are overwritten.
    pub fn restore(&self, rng: &mut impl rand::Rng) -> Network {
        let mut net = Network::new(&self.spec, rng);
        let mut cursor = 0usize;
        let params = &self.params;
        net.visit_params(&mut |p, _| {
            assert!(cursor < params.len(), "state has too few tensors");
            assert_eq!(
                p.len(),
                params[cursor].len(),
                "tensor {cursor} size mismatch"
            );
            p.copy_from_slice(&params[cursor]);
            cursor += 1;
        });
        assert_eq!(cursor, params.len(), "state has too many tensors");
        net
    }

    /// Compact binary encoding: a little-endian stream of tensor lengths
    /// and payloads wrapped around the JSON-encoded spec.
    pub fn to_bytes(&self) -> Bytes {
        let spec_json = match serde_json::to_vec(&self.spec) {
            Ok(json) => json,
            // NetSpec is a plain data struct; serialization cannot fail.
            Err(e) => unreachable!("spec serializes: {e}"),
        };
        let mut buf = BytesMut::with_capacity(
            16 + spec_json.len() + self.params.iter().map(|p| 4 + p.len() * 4).sum::<usize>(),
        );
        buf.put_u32_le(self.epoch);
        buf.put_u32_le(spec_json.len() as u32);
        buf.put_slice(&spec_json);
        buf.put_u32_le(self.params.len() as u32);
        for p in &self.params {
            buf.put_u32_le(p.len() as u32);
            for &v in p {
                buf.put_f32_le(v);
            }
        }
        buf.freeze()
    }

    /// Decode the binary form produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(mut data: Bytes) -> Result<Self, String> {
        let need = |data: &Bytes, n: usize| -> Result<(), String> {
            if data.remaining() < n {
                Err(format!("truncated model state: need {n} more bytes"))
            } else {
                Ok(())
            }
        };
        need(&data, 8)?;
        let epoch = data.get_u32_le();
        let spec_len = data.get_u32_le() as usize;
        need(&data, spec_len)?;
        let spec_bytes = data.split_to(spec_len);
        let spec: NetSpec =
            serde_json::from_slice(&spec_bytes).map_err(|e| format!("bad spec: {e}"))?;
        need(&data, 4)?;
        let n_tensors = data.get_u32_le() as usize;
        let mut params = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            need(&data, 4)?;
            let len = data.get_u32_le() as usize;
            need(&data, len * 4)?;
            let mut t = Vec::with_capacity(len);
            for _ in 0..len {
                t.push(data.get_f32_le());
            }
            params.push(t);
        }
        Ok(ModelState {
            spec,
            params,
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PhaseNetSpec;
    use crate::tensor::Tensor4;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn spec() -> NetSpec {
        NetSpec {
            input_channels: 1,
            phases: vec![PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                node_inputs: vec![vec![], vec![0]],
                leaves: vec![1],
                skip: false,
            }],
            num_classes: 2,
        }
    }

    #[test]
    fn capture_restore_preserves_outputs() {
        let mut net = Network::new(&spec(), &mut rng(1));
        let state = ModelState::capture(&mut net, 7);
        assert_eq!(state.epoch, 7);
        let mut restored = state.restore(&mut rng(999)); // different seed on purpose
        let x = Tensor4::from_vec(1, 1, 6, 6, (0..36).map(|i| i as f32 / 36.0).collect());
        assert_eq!(
            net.forward(&x, false).data(),
            restored.forward(&x, false).data()
        );
    }

    #[test]
    fn binary_roundtrip() {
        let mut net = Network::new(&spec(), &mut rng(2));
        let state = ModelState::capture(&mut net, 3);
        let bytes = state.to_bytes();
        let back = ModelState::from_bytes(bytes).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn truncated_bytes_error() {
        let mut net = Network::new(&spec(), &mut rng(3));
        let state = ModelState::capture(&mut net, 0);
        let bytes = state.to_bytes();
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(ModelState::from_bytes(truncated).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let mut net = Network::new(&spec(), &mut rng(4));
        let state = ModelState::capture(&mut net, 12);
        let json = serde_json::to_string(&state).unwrap();
        let back: ModelState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn restore_rejects_mismatched_tensors() {
        let mut net = Network::new(&spec(), &mut rng(5));
        let mut state = ModelState::capture(&mut net, 0);
        state.params[0].pop();
        let _ = state.restore(&mut rng(6));
    }
}
