//! Stride-1, same-padding pooling layers — the pooling *operations* of
//! cell-based (micro) search spaces, as opposed to the stride-2 spatial
//! reductions between phases ([`crate::layers::MaxPool2d`]).

use crate::tensor::Tensor4;
use serde::{Deserialize, Serialize};

/// `k × k` max pooling, stride 1, same zero padding (odd `k`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2dSame {
    /// Window side (odd).
    pub kernel: usize,
    #[serde(skip)]
    argmax: Vec<usize>,
    #[serde(skip)]
    in_shape: (usize, usize, usize, usize),
}

impl MaxPool2dSame {
    /// New layer.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same-padding pool needs an odd kernel");
        MaxPool2dSame {
            kernel,
            argmax: Vec::new(),
            in_shape: (0, 0, 0, 0),
        }
    }

    /// Forward pass; records argmax indices (padding cells never win: the
    /// window is restricted to valid pixels).
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        self.in_shape = x.shape();
        let pad = (self.kernel / 2) as isize;
        let mut out = Tensor4::zeros(n, c, h, w);
        self.argmax.clear();
        self.argmax.resize(n * c * h * w, 0);
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h {
                    for xo in 0..w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in -pad..=pad {
                            let yy = y as isize + dy;
                            if yy < 0 || yy >= h as isize {
                                continue;
                            }
                            for dx in -pad..=pad {
                                let xx = xo as isize + dx;
                                if xx < 0 || xx >= w as isize {
                                    continue;
                                }
                                let idx = x.index(ni, ci, yy as usize, xx as usize);
                                let v = x.data()[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = out.index(ni, ci, y, xo);
                        out.data_mut()[oidx] = best;
                        self.argmax[oidx] = best_idx;
                    }
                }
            }
        }
        out
    }

    /// Backward: route each gradient to its argmax source.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = self.in_shape;
        let mut grad_in = Tensor4::zeros(n, c, h, w);
        for (o, &src) in self.argmax.iter().enumerate() {
            grad_in.data_mut()[src] += grad_out.data()[o];
        }
        grad_in
    }

    /// Forward FLOPs (comparisons) for one sample with `c` channels.
    pub fn flops(&self, c: usize, h: usize, w: usize) -> f64 {
        ((self.kernel * self.kernel) * c * h * w) as f64
    }
}

/// `k × k` average pooling, stride 1, same zero padding, normalized by the
/// number of *valid* (in-bounds) cells so borders are unbiased.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvgPool2dSame {
    /// Window side (odd).
    pub kernel: usize,
    #[serde(skip)]
    in_shape: (usize, usize, usize, usize),
}

impl AvgPool2dSame {
    /// New layer.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same-padding pool needs an odd kernel");
        AvgPool2dSame {
            kernel,
            in_shape: (0, 0, 0, 0),
        }
    }

    fn valid_count(&self, y: usize, x: usize, h: usize, w: usize) -> f32 {
        let pad = (self.kernel / 2) as isize;
        let ys = ((y as isize - pad).max(0)..=(y as isize + pad).min(h as isize - 1)).count();
        let xs = ((x as isize - pad).max(0)..=(x as isize + pad).min(w as isize - 1)).count();
        (ys * xs) as f32
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        self.in_shape = x.shape();
        let pad = (self.kernel / 2) as isize;
        let mut out = Tensor4::zeros(n, c, h, w);
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h {
                    for xo in 0..w {
                        let mut acc = 0.0f32;
                        for dy in -pad..=pad {
                            let yy = y as isize + dy;
                            if yy < 0 || yy >= h as isize {
                                continue;
                            }
                            for dx in -pad..=pad {
                                let xx = xo as isize + dx;
                                if xx < 0 || xx >= w as isize {
                                    continue;
                                }
                                acc += x.get(ni, ci, yy as usize, xx as usize);
                            }
                        }
                        out.set(ni, ci, y, xo, acc / self.valid_count(y, xo, h, w));
                    }
                }
            }
        }
        out
    }

    /// Backward: each output gradient spreads uniformly over its valid
    /// window (the adjoint of the forward average).
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = self.in_shape;
        let pad = (self.kernel / 2) as isize;
        let mut grad_in = Tensor4::zeros(n, c, h, w);
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h {
                    for xo in 0..w {
                        let g = grad_out.get(ni, ci, y, xo) / self.valid_count(y, xo, h, w);
                        for dy in -pad..=pad {
                            let yy = y as isize + dy;
                            if yy < 0 || yy >= h as isize {
                                continue;
                            }
                            for dx in -pad..=pad {
                                let xx = xo as isize + dx;
                                if xx < 0 || xx >= w as isize {
                                    continue;
                                }
                                let idx = grad_in.index(ni, ci, yy as usize, xx as usize);
                                grad_in.data_mut()[idx] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Forward FLOPs for one sample with `c` channels.
    pub fn flops(&self, c: usize, h: usize, w: usize) -> f64 {
        ((self.kernel * self.kernel + 1) * c * h * w) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(h: usize, w: usize) -> Tensor4 {
        Tensor4::from_vec(1, 1, h, w, (0..h * w).map(|i| i as f32).collect())
    }

    #[test]
    fn max_same_preserves_shape_and_takes_window_max() {
        let mut pool = MaxPool2dSame::new(3);
        let x = numbered(3, 3); // 0..8 row-major
        let y = pool.forward(&x);
        assert_eq!(y.shape(), (1, 1, 3, 3));
        // Center sees the whole image: max = 8.
        assert_eq!(y.get(0, 0, 1, 1), 8.0);
        // Top-left sees {0,1,3,4}: max = 4.
        assert_eq!(y.get(0, 0, 0, 0), 4.0);
    }

    #[test]
    fn max_same_backward_routes_to_argmax() {
        let mut pool = MaxPool2dSame::new(3);
        let x = numbered(3, 3);
        let _ = pool.forward(&x);
        let mut g = Tensor4::zeros(1, 1, 3, 3);
        g.data_mut().iter_mut().for_each(|v| *v = 1.0);
        let gi = pool.backward(&g);
        // Every window's max lies on the bottom row or right column; pixel
        // 8 wins the 4 windows that contain it.
        assert_eq!(gi.get(0, 0, 2, 2), 4.0);
        assert_eq!(gi.data().iter().sum::<f32>(), 9.0);
    }

    #[test]
    fn avg_same_of_constant_is_identity() {
        let mut pool = AvgPool2dSame::new(3);
        let x = Tensor4::from_vec(1, 1, 4, 4, vec![2.5; 16]);
        let y = pool.forward(&x);
        for &v in y.data() {
            assert!((v - 2.5).abs() < 1e-6, "border normalization broken: {v}");
        }
    }

    #[test]
    fn avg_same_center_value() {
        let mut pool = AvgPool2dSame::new(3);
        let x = numbered(3, 3);
        let y = pool.forward(&x);
        assert!((y.get(0, 0, 1, 1) - 4.0).abs() < 1e-6); // mean of 0..8
    }

    #[test]
    fn avg_backward_is_adjoint_of_forward() {
        // <Ax, y> == <x, Aᵀy> for random x, y.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut pool = AvgPool2dSame::new(3);
        let mut x = Tensor4::zeros(1, 2, 5, 5);
        let mut y = Tensor4::zeros(1, 2, 5, 5);
        for v in x.data_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        for v in y.data_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let ax = pool.forward(&x);
        let aty = pool.backward(&y);
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let _ = MaxPool2dSame::new(2);
    }
}
