//! Optimizers. NSGA-Net trains its candidates with SGD + momentum — the
//! paper's configuration — and Adam is provided for the hyperparameter
//! studies the composable workflow invites.

use crate::graph::Network;

/// Stochastic gradient descent with classical momentum and decoupled L2
/// weight decay. Velocity buffers are keyed by parameter-visit order,
/// which is stable for a given network.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight-decay coefficient (0 disables).
    pub weight_decay: f32,
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// New optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocities: Vec::new(),
        }
    }

    /// Apply one update step using the gradients accumulated in `net`,
    /// then zero the gradients.
    pub fn step(&mut self, net: &mut Network) {
        let mut slot = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocities = &mut self.velocities;
        net.visit_params(&mut |params, grads| {
            if velocities.len() <= slot {
                velocities.push(vec![0.0; params.len()]);
            }
            let vel = &mut velocities[slot];
            debug_assert_eq!(vel.len(), params.len(), "parameter set changed size");
            for i in 0..params.len() {
                let g = grads[i] + wd * params[i];
                vel[i] = momentum * vel[i] + g;
                params[i] -= lr * vel[i];
                grads[i] = 0.0;
            }
            slot += 1;
        });
    }
}

/// Adam (Kingma & Ba, 2015) with bias-corrected first/second moments and
/// decoupled L2 weight decay. Moment buffers are keyed by parameter-visit
/// order like [`Sgd`]'s velocities.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay of the first moment.
    pub beta1: f32,
    /// Exponential decay of the second moment.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the canonical β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one update step using the gradients accumulated in `net`,
    /// then zero the gradients.
    pub fn step(&mut self, net: &mut Network) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let mut slot = 0usize;
        let m_buf = &mut self.m;
        let v_buf = &mut self.v;
        net.visit_params(&mut |params, grads| {
            if m_buf.len() <= slot {
                m_buf.push(vec![0.0; params.len()]);
                v_buf.push(vec![0.0; params.len()]);
            }
            let m = &mut m_buf[slot];
            let v = &mut v_buf[slot];
            debug_assert_eq!(m.len(), params.len(), "parameter set changed size");
            for i in 0..params.len() {
                let g = grads[i] + wd * params[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                params[i] -= lr * mhat / (vhat.sqrt() + eps);
                grads[i] = 0.0;
            }
            slot += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NetSpec, Network, PhaseNetSpec};
    use crate::loss::cross_entropy;
    use crate::tensor::Tensor4;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        let spec = NetSpec {
            input_channels: 1,
            phases: vec![PhaseNetSpec::degenerate(4, 3)],
            num_classes: 2,
        };
        Network::new(&spec, &mut rand::rngs::StdRng::seed_from_u64(seed))
    }

    fn snapshot(net: &mut Network) -> Vec<f32> {
        let mut all = Vec::new();
        net.visit_params(&mut |p, _| all.extend_from_slice(p));
        all
    }

    fn one_step(net: &mut Network, opt: &mut Sgd) {
        let x = Tensor4::from_vec(2, 1, 4, 4, (0..32).map(|i| i as f32 / 31.0).collect());
        let logits = net.forward(&x, true);
        let out = cross_entropy(&logits, &[0, 1]);
        net.backward(&out.dlogits);
        opt.step(net);
    }

    #[test]
    fn step_changes_parameters_and_clears_grads() {
        let mut n = net(1);
        let before = snapshot(&mut n);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        one_step(&mut n, &mut opt);
        let after = snapshot(&mut n);
        assert_ne!(before, after);
        // Gradients must be zeroed after the step.
        n.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradients() {
        let mut n = net(2);
        let before: f32 = snapshot(&mut n).iter().map(|v| v * v).sum();
        // No forward/backward: gradients are zero, decay still applies.
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        opt.step(&mut n);
        let after: f32 = snapshot(&mut n).iter().map(|v| v * v).sum();
        assert!(after < before);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // Two identical gradient applications move farther with momentum
        // than without.
        let run = |momentum: f32| {
            let mut n = net(3);
            let start = snapshot(&mut n);
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            for _ in 0..5 {
                one_step(&mut n, &mut opt);
            }
            let end = snapshot(&mut n);
            start
                .iter()
                .zip(end)
                .map(|(a, b)| (a - b).abs() as f64)
                .sum::<f64>()
        };
        assert!(run(0.9) > run(0.0));
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0, 0.9, 0.0);
    }

    #[test]
    fn adam_changes_parameters_and_clears_grads() {
        let mut n = net(4);
        let before = snapshot(&mut n);
        let mut opt = Adam::new(1e-3, 0.0);
        let x = Tensor4::from_vec(2, 1, 4, 4, (0..32).map(|i| i as f32 / 31.0).collect());
        let logits = n.forward(&x, true);
        let out = cross_entropy(&logits, &[0, 1]);
        n.backward(&out.dlogits);
        opt.step(&mut n);
        let after = snapshot(&mut n);
        assert_ne!(before, after);
        n.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn adam_reduces_loss_on_toy_task() {
        let mut n = net(5);
        let mut opt = Adam::new(5e-3, 0.0);
        let x = Tensor4::from_vec(2, 1, 4, 4, (0..32).map(|i| (i % 7) as f32 / 7.0).collect());
        let labels = [0usize, 1];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let logits = n.forward(&x, true);
            let out = cross_entropy(&logits, &labels);
            n.backward(&out.dlogits);
            opt.step(&mut n);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.7, "{} -> {last}", first.unwrap());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn adam_zero_lr_rejected() {
        let _ = Adam::new(0.0, 0.0);
    }
}
