//! Cell-based (micro search space) networks.
//!
//! NSGA-Net searches two spaces; the paper's evaluation uses the *macro*
//! space ([`crate::graph`]), and this module provides the *micro* space's
//! substrate: a small **cell** — a DAG whose nodes each combine two
//! earlier states through chosen operations — repeated across stages with
//! spatial reduction between them. Operations follow the usual micro
//! vocabulary: 3×3 and 5×5 conv (with BN+ReLU), 3×3 max/avg pooling
//! (stride 1, same padding), and identity.

use crate::layers::{BatchNorm2d, Conv2d, Dense, GlobalAvgPool, MaxPool2d, ParamVisitor, Relu};
use crate::pool_same::{AvgPool2dSame, MaxPool2dSame};
use crate::tensor::{Tensor2, Tensor4};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Operation a cell node applies to one of its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellOp {
    /// 3×3 conv → BN → ReLU.
    Conv3,
    /// 5×5 conv → BN → ReLU.
    Conv5,
    /// 3×3 max pool, stride 1.
    MaxPool3,
    /// 3×3 average pool, stride 1.
    AvgPool3,
    /// Pass-through.
    Identity,
}

impl CellOp {
    /// All operations, in a stable order (genome op indices).
    pub const ALL: [CellOp; 5] = [
        CellOp::Conv3,
        CellOp::Conv5,
        CellOp::MaxPool3,
        CellOp::AvgPool3,
        CellOp::Identity,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CellOp::Conv3 => "conv3x3",
            CellOp::Conv5 => "conv5x5",
            CellOp::MaxPool3 => "maxpool3x3",
            CellOp::AvgPool3 => "avgpool3x3",
            CellOp::Identity => "identity",
        }
    }
}

/// One cell node: `state[out] = op1(state[in1]) + op2(state[in2])`.
/// State 0 is the cell input; node `i` produces state `i + 1`, so inputs
/// must reference states `≤ i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellNodeSpec {
    /// First input state.
    pub in1: usize,
    /// Operation on the first input.
    pub op1: CellOp,
    /// Second input state.
    pub in2: usize,
    /// Operation on the second input.
    pub op2: CellOp,
}

/// A cell: an ordered list of nodes over the growing state list. The cell
/// output sums every state that no node consumes (the "loose ends", as in
/// DARTS-style cells), or the last state if all are consumed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSpec {
    /// The nodes, in execution order.
    pub nodes: Vec<CellNodeSpec>,
}

impl CellSpec {
    /// Validate state references.
    pub fn validate(&self) {
        assert!(!self.nodes.is_empty(), "cell needs at least one node");
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                node.in1 <= i,
                "node {i} input {0} from the future",
                node.in1
            );
            assert!(
                node.in2 <= i,
                "node {i} input {0} from the future",
                node.in2
            );
        }
    }

    /// States that no node consumes (candidates for the cell output),
    /// excluding state 0 when any node exists.
    pub fn loose_ends(&self) -> Vec<usize> {
        let n_states = self.nodes.len() + 1;
        let mut consumed = vec![false; n_states];
        for node in &self.nodes {
            consumed[node.in1] = true;
            consumed[node.in2] = true;
        }
        let ends: Vec<usize> = (1..n_states).filter(|&s| !consumed[s]).collect();
        if ends.is_empty() {
            vec![n_states - 1]
        } else {
            ends
        }
    }
}

/// Full micro-network specification: stem → stages of repeated cells with
/// stride-2 reductions and channel growth between stages → classifier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroNetSpec {
    /// Input image channels.
    pub input_channels: usize,
    /// Channel width of each stage (the stem maps to `stage_channels[0]`).
    pub stage_channels: Vec<usize>,
    /// Cells per stage.
    pub cells_per_stage: usize,
    /// The (shared) cell topology; weights are per-instance.
    pub cell: CellSpec,
    /// Classifier classes.
    pub num_classes: usize,
}

/// One instantiated operation.
// Conv dominates both the op mix and the allocation; boxing it would
// add an indirection on the hot path for no practical memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
enum OpLayer {
    Conv {
        conv: Conv2d,
        bn: BatchNorm2d,
        relu: Relu,
    },
    MaxPool(MaxPool2dSame),
    AvgPool(AvgPool2dSame),
    Identity,
}

impl OpLayer {
    fn new<R: Rng + ?Sized>(op: CellOp, channels: usize, rng: &mut R) -> Self {
        match op {
            CellOp::Conv3 | CellOp::Conv5 => {
                let kernel = if op == CellOp::Conv3 { 3 } else { 5 };
                OpLayer::Conv {
                    conv: Conv2d::new(channels, channels, kernel, rng),
                    bn: BatchNorm2d::new(channels),
                    relu: Relu::new(),
                }
            }
            CellOp::MaxPool3 => OpLayer::MaxPool(MaxPool2dSame::new(3)),
            CellOp::AvgPool3 => OpLayer::AvgPool(AvgPool2dSame::new(3)),
            CellOp::Identity => OpLayer::Identity,
        }
    }

    fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        match self {
            OpLayer::Conv { conv, bn, relu } => {
                let a = conv.forward(x);
                let b = bn.forward(&a, training);
                relu.forward_owned(b)
            }
            OpLayer::MaxPool(p) => p.forward(x),
            OpLayer::AvgPool(p) => p.forward(x),
            OpLayer::Identity => x.clone(),
        }
    }

    fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        match self {
            OpLayer::Conv { conv, bn, relu } => {
                let g = relu.backward(grad);
                let g = bn.backward(&g);
                conv.backward(&g)
            }
            OpLayer::MaxPool(p) => p.backward(grad),
            OpLayer::AvgPool(p) => p.backward(grad),
            OpLayer::Identity => grad.clone(),
        }
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        if let OpLayer::Conv { conv, bn, .. } = self {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn rebuild_buffers(&mut self) {
        if let OpLayer::Conv { conv, bn, .. } = self {
            conv.rebuild_buffers();
            bn.rebuild_buffers();
        }
    }

    fn flops(&self, c: usize, h: usize, w: usize) -> f64 {
        match self {
            OpLayer::Conv { conv, bn, relu } => {
                conv.flops(h, w) + bn.flops(h, w) + relu.flops(c, h, w)
            }
            OpLayer::MaxPool(p) => p.flops(c, h, w),
            OpLayer::AvgPool(p) => p.flops(c, h, w),
            OpLayer::Identity => 0.0,
        }
    }
}

/// One instantiated cell (own weights).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    spec: CellSpec,
    ops: Vec<(OpLayer, OpLayer)>,
    loose_ends: Vec<usize>,
}

impl Cell {
    fn new<R: Rng + ?Sized>(spec: &CellSpec, channels: usize, rng: &mut R) -> Self {
        spec.validate();
        let ops = spec
            .nodes
            .iter()
            .map(|n| {
                (
                    OpLayer::new(n.op1, channels, rng),
                    OpLayer::new(n.op2, channels, rng),
                )
            })
            .collect();
        Cell {
            spec: spec.clone(),
            loose_ends: spec.loose_ends(),
            ops,
        }
    }

    fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        let mut states: Vec<Tensor4> = Vec::with_capacity(self.spec.nodes.len() + 1);
        states.push(x.clone());
        for (node, (op1, op2)) in self.spec.nodes.iter().zip(&mut self.ops) {
            let mut out = op1.forward(&states[node.in1], training);
            out.add_assign(&op2.forward(&states[node.in2], training));
            states.push(out);
        }
        let mut out = states[self.loose_ends[0]].clone();
        for &s in &self.loose_ends[1..] {
            out.add_assign(&states[s]);
        }
        out
    }

    fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        let n_states = self.spec.nodes.len() + 1;
        let (n, c, h, w) = grad.shape();
        let mut state_grads: Vec<Tensor4> =
            (0..n_states).map(|_| Tensor4::zeros(n, c, h, w)).collect();
        for &s in &self.loose_ends {
            state_grads[s].add_assign(grad);
        }
        for (i, (node, (op1, op2))) in self.spec.nodes.iter().zip(&mut self.ops).enumerate().rev() {
            let g_out = std::mem::replace(&mut state_grads[i + 1], Tensor4::zeros(0, 0, 0, 0));
            let g1 = op1.backward(&g_out);
            state_grads[node.in1].add_assign(&g1);
            let g2 = op2.backward(&g_out);
            state_grads[node.in2].add_assign(&g2);
        }
        state_grads.swap_remove(0)
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        for (a, b) in &mut self.ops {
            a.visit_params(f);
            b.visit_params(f);
        }
    }

    fn rebuild_buffers(&mut self) {
        for (a, b) in &mut self.ops {
            a.rebuild_buffers();
            b.rebuild_buffers();
        }
    }

    fn flops(&self, c: usize, h: usize, w: usize) -> f64 {
        let ops: f64 = self
            .ops
            .iter()
            .map(|(a, b)| a.flops(c, h, w) + b.flops(c, h, w))
            .sum();
        // One add per node join plus the output joins.
        let joins = self.spec.nodes.len() + self.loose_ends.len().saturating_sub(1);
        ops + (joins * c * h * w) as f64
    }
}

/// Conv→BN→ReLU transition used for the stem and between stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Transition {
    conv: Conv2d,
    bn: BatchNorm2d,
    relu: Relu,
}

impl Transition {
    fn new<R: Rng + ?Sized>(c_in: usize, c_out: usize, rng: &mut R) -> Self {
        Transition {
            conv: Conv2d::new(c_in, c_out, 3, rng),
            bn: BatchNorm2d::new(c_out),
            relu: Relu::new(),
        }
    }
    fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        let a = self.conv.forward(x);
        let b = self.bn.forward(&a, training);
        self.relu.forward_owned(b)
    }
    fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        let g = self.relu.backward(grad);
        let g = self.bn.backward(&g);
        self.conv.backward(&g)
    }
    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.conv.visit_params(f);
        self.bn.visit_params(f);
    }
    fn rebuild_buffers(&mut self) {
        self.conv.rebuild_buffers();
        self.bn.rebuild_buffers();
    }
    fn flops(&self, h: usize, w: usize) -> f64 {
        self.conv.flops(h, w) + self.bn.flops(h, w) + self.relu.flops(self.conv.c_out, h, w)
    }
}

/// A trainable micro (cell-based) network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroNetwork {
    spec: MicroNetSpec,
    transitions: Vec<Transition>,
    stages: Vec<Vec<Cell>>,
    pools: Vec<MaxPool2d>,
    gap: GlobalAvgPool,
    classifier: Dense,
}

impl MicroNetwork {
    /// Instantiate with seeded weights.
    pub fn new<R: Rng + ?Sized>(spec: &MicroNetSpec, rng: &mut R) -> Self {
        assert!(!spec.stage_channels.is_empty(), "need at least one stage");
        assert!(
            spec.cells_per_stage >= 1,
            "need at least one cell per stage"
        );
        spec.cell.validate();
        let mut transitions = Vec::with_capacity(spec.stage_channels.len());
        let mut stages = Vec::with_capacity(spec.stage_channels.len());
        let mut pools = Vec::with_capacity(spec.stage_channels.len());
        let mut c_in = spec.input_channels;
        for &c in &spec.stage_channels {
            transitions.push(Transition::new(c_in, c, rng));
            stages.push(
                (0..spec.cells_per_stage)
                    .map(|_| Cell::new(&spec.cell, c, rng))
                    .collect(),
            );
            pools.push(MaxPool2d::new());
            c_in = c;
        }
        let classifier = Dense::new(c_in, spec.num_classes, rng);
        MicroNetwork {
            spec: spec.clone(),
            transitions,
            stages,
            pools,
            gap: GlobalAvgPool::new(),
            classifier,
        }
    }

    /// The spec this network was built from.
    pub fn spec(&self) -> &MicroNetSpec {
        &self.spec
    }

    /// Forward pass returning logits.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor2 {
        let mut act = x.clone();
        for s in 0..self.stages.len() {
            act = self.transitions[s].forward(&act, training);
            for cell in &mut self.stages[s] {
                act = cell.forward(&act, training);
            }
            act = self.pools[s].forward(&act);
        }
        let pooled = self.gap.forward(&act);
        self.classifier.forward(&pooled)
    }

    /// Backward pass from logits gradient.
    pub fn backward(&mut self, dlogits: &Tensor2) {
        let g = self.classifier.backward(dlogits);
        let mut g = self.gap.backward(&g);
        for s in (0..self.stages.len()).rev() {
            g = self.pools[s].backward(&g);
            for cell in self.stages[s].iter_mut().rev() {
                g = cell.backward(&g);
            }
            g = self.transitions[s].backward(&g);
        }
    }

    /// Visit all `(param, grad)` pairs in a stable order.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        for s in 0..self.stages.len() {
            self.transitions[s].visit_params(f);
            for cell in &mut self.stages[s] {
                cell.visit_params(f);
            }
        }
        self.classifier.visit_params(f);
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p, _| count += p.len());
        count
    }

    /// Exact forward FLOPs for one sample at `input_hw`.
    pub fn flops(&self, input_hw: (usize, usize)) -> f64 {
        let (mut h, mut w) = input_hw;
        let mut total = 0.0;
        for (s, &c) in self.spec.stage_channels.iter().enumerate() {
            total += self.transitions[s].flops(h, w);
            for cell in &self.stages[s] {
                total += cell.flops(c, h, w);
            }
            h = (h / 2).max(1);
            w = (w / 2).max(1);
            total += 3.0 * (c * h * w) as f64;
        }
        let Some(&c_last) = self.spec.stage_channels.last() else {
            unreachable!("spec has at least one stage")
        };
        total += (c_last * h * w) as f64;
        total += self.classifier.flops();
        total
    }

    /// Classification accuracy (%) on a labeled set.
    pub fn evaluate(&mut self, images: &Tensor4, labels: &[usize]) -> f32 {
        assert_eq!(images.n, labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let logits = self.forward(images, false);
        let mut correct = 0;
        for (r, &label) in labels.iter().enumerate() {
            let row = logits.row(r);
            let Some((pred, _)) = row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) else {
                unreachable!("logits row is non-empty")
            };
            if pred == label {
                correct += 1;
            }
        }
        100.0 * correct as f32 / labels.len() as f32
    }

    /// Rebuild transient buffers after deserialization.
    pub fn rebuild_buffers(&mut self) {
        for s in 0..self.stages.len() {
            self.transitions[s].rebuild_buffers();
            for cell in &mut self.stages[s] {
                cell.rebuild_buffers();
            }
        }
        self.classifier.rebuild_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn tiny_cell() -> CellSpec {
        CellSpec {
            nodes: vec![
                CellNodeSpec {
                    in1: 0,
                    op1: CellOp::Conv3,
                    in2: 0,
                    op2: CellOp::MaxPool3,
                },
                CellNodeSpec {
                    in1: 1,
                    op1: CellOp::Identity,
                    in2: 0,
                    op2: CellOp::AvgPool3,
                },
            ],
        }
    }

    fn spec() -> MicroNetSpec {
        MicroNetSpec {
            input_channels: 1,
            stage_channels: vec![4, 8],
            cells_per_stage: 1,
            cell: tiny_cell(),
            num_classes: 2,
        }
    }

    #[test]
    fn loose_ends_analysis() {
        // Node 1 consumes state 1, so only state 2 is loose.
        assert_eq!(tiny_cell().loose_ends(), vec![2]);
        // A cell whose nodes both read only state 0 leaves both outputs
        // loose.
        let parallel = CellSpec {
            nodes: vec![
                CellNodeSpec {
                    in1: 0,
                    op1: CellOp::Conv3,
                    in2: 0,
                    op2: CellOp::Identity,
                },
                CellNodeSpec {
                    in1: 0,
                    op1: CellOp::Conv5,
                    in2: 0,
                    op2: CellOp::Identity,
                },
            ],
        };
        assert_eq!(parallel.loose_ends(), vec![1, 2]);
    }

    #[test]
    fn forward_shapes_and_flops() {
        let mut net = MicroNetwork::new(&spec(), &mut rng(1));
        let x = Tensor4::zeros(3, 1, 8, 8);
        let logits = net.forward(&x, true);
        assert_eq!((logits.rows, logits.cols), (3, 2));
        assert!(net.flops((8, 8)) > 0.0);
        assert!(net.param_count() > 100);
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        let mut r = rng(3);
        let n = 16;
        let mut images = Tensor4::zeros(n, 1, 8, 8);
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            labels.push(label);
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if label == 0 { x < 4 } else { x >= 4 };
                    images.set(i, 0, y, x, if bright { 1.0 } else { 0.0 });
                }
            }
        }
        let mut net = MicroNetwork::new(&spec(), &mut r);
        // Plain SGD on visited params (MicroNetwork is not a graph::Network,
        // so drive the update loop manually).
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let logits = net.forward(&images, true);
            let out = cross_entropy(&logits, &labels);
            net.backward(&out.dlogits);
            net.visit_params(&mut |p, g| {
                for (pi, gi) in p.iter_mut().zip(g.iter_mut()) {
                    *pi -= 0.05 * *gi;
                    *gi = 0.0;
                }
            });
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(
            last < first.unwrap() * 0.6,
            "loss {} -> {last}",
            first.unwrap()
        );
    }

    #[test]
    fn deterministic_construction() {
        let mut a = MicroNetwork::new(&spec(), &mut rng(5));
        let mut b = MicroNetwork::new(&spec(), &mut rng(5));
        let x = Tensor4::zeros(1, 1, 8, 8);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
    }

    #[test]
    fn all_ops_execute_and_backprop() {
        // A cell touching every operation.
        let cell = CellSpec {
            nodes: vec![
                CellNodeSpec {
                    in1: 0,
                    op1: CellOp::Conv3,
                    in2: 0,
                    op2: CellOp::Conv5,
                },
                CellNodeSpec {
                    in1: 1,
                    op1: CellOp::MaxPool3,
                    in2: 0,
                    op2: CellOp::AvgPool3,
                },
                CellNodeSpec {
                    in1: 2,
                    op1: CellOp::Identity,
                    in2: 1,
                    op2: CellOp::Identity,
                },
            ],
        };
        let spec = MicroNetSpec {
            input_channels: 1,
            stage_channels: vec![4],
            cells_per_stage: 2,
            cell,
            num_classes: 2,
        };
        let mut net = MicroNetwork::new(&spec, &mut rng(7));
        let x = Tensor4::zeros(2, 1, 8, 8);
        let logits = net.forward(&x, true);
        let out = cross_entropy(&logits, &[0, 1]);
        net.backward(&out.dlogits); // must not panic
    }

    #[test]
    #[should_panic(expected = "future")]
    fn forward_reference_rejected() {
        let cell = CellSpec {
            nodes: vec![CellNodeSpec {
                in1: 1, // its own output
                op1: CellOp::Identity,
                in2: 0,
                op2: CellOp::Identity,
            }],
        };
        cell.validate();
    }
}
