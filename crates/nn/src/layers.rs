//! Neural-network layers with hand-derived backward passes.
//!
//! Every layer caches what its backward pass needs during `forward`,
//! exposes its parameters through [`visit_params`](Conv2d::visit_params)
//! so the optimizer stays layer-agnostic, and reports exact forward FLOPs
//! for the NAS's second objective.

use crate::gemm;
use crate::im2col::{self, ConvGeometry};
use crate::init::{he_normal, xavier_normal};
use crate::tensor::{Tensor2, Tensor4};
use crate::workspace::Workspace;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Visitor signature for parameter/gradient pairs.
pub type ParamVisitor<'a> = &'a mut dyn FnMut(&mut [f32], &mut [f32]);

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// Which convolution kernel [`Conv2d`] runs on.
///
/// Both backends produce gradients and activations that agree to ≤1e-4
/// (verified by proptest); `Im2colGemm` is the fast default, `Naive` the
/// straight-line reference kept for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConvImpl {
    /// Direct 7-deep loop nest, data-parallel over the batch via rayon.
    Naive,
    /// im2col lowering onto the cache-blocked GEMM in [`crate::gemm`],
    /// batch-parallel on scoped threads sized by the intra-op budget.
    #[default]
    Im2colGemm,
}

impl std::str::FromStr for ConvImpl {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(ConvImpl::Naive),
            "im2col" | "im2col-gemm" | "gemm" => Ok(ConvImpl::Im2colGemm),
            other => Err(format!(
                "unknown conv impl {other:?} (expected naive|im2col)"
            )),
        }
    }
}

impl std::fmt::Display for ConvImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConvImpl::Naive => "naive",
            ConvImpl::Im2colGemm => "im2col",
        })
    }
}

/// Which kernel [`Dense`] runs on.
///
/// Unlike the conv backends (which agree to ≤1e-4), the two dense backends
/// are **bitwise identical**: `Gemm` routes through
/// [`gemm::gemm_nn_seq`], whose per-element accumulation order reproduces
/// the naive sequential loops exactly (verified by the equivalence tests
/// in `crates/nn/tests/dense_equivalence.rs`). `Naive` is kept for
/// differential testing and as the PR 3 baseline in the training bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DenseImpl {
    /// Straight-line triple loop, one sequential dot per output.
    Naive,
    /// Blocked sequential-accumulation GEMM ([`gemm::gemm_nn_seq`]),
    /// row-parallel on scoped threads sized by the intra-op budget.
    #[default]
    Gemm,
}

impl std::str::FromStr for DenseImpl {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(DenseImpl::Naive),
            "gemm" => Ok(DenseImpl::Gemm),
            other => Err(format!(
                "unknown dense impl {other:?} (expected naive|gemm)"
            )),
        }
    }
}

impl std::fmt::Display for DenseImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DenseImpl::Naive => "naive",
            DenseImpl::Gemm => "gemm",
        })
    }
}

/// 2-D convolution, stride 1, `same` zero padding, square kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel side (odd).
    pub kernel: usize,
    /// Weights, `[c_out][c_in][k][k]` flattened.
    pub weight: Vec<f32>,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
    /// Selected compute backend.
    #[serde(default)]
    pub conv_impl: ConvImpl,
    #[serde(skip)]
    wgrad: Vec<f32>,
    #[serde(skip)]
    bgrad: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Tensor4>,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new<R: Rng + ?Sized>(c_in: usize, c_out: usize, kernel: usize, rng: &mut R) -> Self {
        assert!(kernel % 2 == 1, "same-padding conv needs an odd kernel");
        let mut weight = vec![0.0f32; c_out * c_in * kernel * kernel];
        he_normal(rng, c_in * kernel * kernel, &mut weight);
        Conv2d {
            c_in,
            c_out,
            kernel,
            weight,
            bias: vec![0.0; c_out],
            conv_impl: ConvImpl::default(),
            wgrad: vec![0.0; c_out * c_in * kernel * kernel],
            bgrad: vec![0.0; c_out],
            cached_input: None,
        }
    }

    /// Select the compute backend.
    pub fn set_impl(&mut self, conv_impl: ConvImpl) {
        self.conv_impl = conv_impl;
    }

    /// Forward pass; caches the input for backward. Convenience wrapper
    /// over [`forward_ws`](Self::forward_ws) with a throwaway workspace.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        self.forward_ws(x, &mut Workspace::default())
    }

    /// Forward pass drawing all scratch (output tensor, im2col panel,
    /// input cache) from `ws` instead of the allocator.
    pub fn forward_ws(&mut self, x: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        match self.conv_impl {
            ConvImpl::Naive => self.forward_naive(x, ws),
            ConvImpl::Im2colGemm => self.forward_gemm(x, ws),
        }
    }

    /// Reference forward: direct loop nest, batch-parallel via rayon.
    fn forward_naive(&mut self, x: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        assert_eq!(x.c, self.c_in, "conv input channel mismatch");
        let (n, _, h, w) = x.shape();
        let k = self.kernel;
        let pad = k / 2;
        // Every output element is written below, so stale scratch is fine.
        let mut out = ws.t4_scratch(n, self.c_out, h, w);
        let sample_out = self.c_out * h * w;
        let weight = &self.weight;
        let bias = &self.bias;
        let c_in = self.c_in;
        out.data_mut()
            .par_chunks_mut(sample_out)
            .enumerate()
            .for_each(|(ni, out_s)| {
                let x_s = x.sample(ni);
                for co in 0..self.c_out {
                    let b = bias[co];
                    for y in 0..h {
                        for xo in 0..w {
                            let mut acc = b;
                            for ci in 0..c_in {
                                let x_base = ci * h * w;
                                let w_base = ((co * c_in + ci) * k) * k;
                                for ky in 0..k {
                                    let yy = y as isize + ky as isize - pad as isize;
                                    if yy < 0 || yy >= h as isize {
                                        continue;
                                    }
                                    let row = x_base + (yy as usize) * w;
                                    let wrow = w_base + ky * k;
                                    for kx in 0..k {
                                        let xx = xo as isize + kx as isize - pad as isize;
                                        if xx < 0 || xx >= w as isize {
                                            continue;
                                        }
                                        acc += x_s[row + xx as usize] * weight[wrow + kx];
                                    }
                                }
                            }
                            out_s[(co * h + y) * w + xo] = acc;
                        }
                    }
                }
            });
        // Recycle a cache left by a forward that never ran backward
        // (inference), so repeated eval forwards don't drain the pool.
        if let Some(old) = self.cached_input.take() {
            ws.give4(old);
        }
        self.cached_input = Some(ws.t4_copy(x));
        out
    }

    /// im2col + blocked-GEMM forward: each sample's receptive fields are
    /// unrolled and multiplied against the weight matrix. Samples are
    /// distributed in contiguous blocks over scoped threads sized by the
    /// intra-op budget; every output element is produced by exactly one
    /// thread, so results are identical for any thread count.
    fn forward_gemm(&mut self, x: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        assert_eq!(x.c, self.c_in, "conv input channel mismatch");
        let (n, _, h, w) = x.shape();
        let g = ConvGeometry::same(self.c_in, h, w, self.kernel);
        // conv_forward_sample seeds every output row with the bias before
        // the GEMM accumulates, so stale scratch contents never leak.
        let mut out = ws.t4_scratch(n, self.c_out, h, w);
        let sample_out = self.c_out * h * w;
        let weight = &self.weight;
        let bias = &self.bias;
        let threads = gemm::resolved_threads(n.max(1));
        if threads <= 1 || n <= 1 {
            // im2col overwrites the whole panel per sample.
            let mut col = ws.take_scratch(g.patch() * g.pixels());
            for (ni, out_s) in out.data_mut().chunks_mut(sample_out).enumerate() {
                im2col::conv_forward_sample(x.sample(ni), weight, bias, &g, &mut col, out_s);
            }
            ws.give(col);
        } else {
            let per = n.div_ceil(threads);
            std::thread::scope(|s| {
                for (gi, out_chunk) in out.data_mut().chunks_mut(per * sample_out).enumerate() {
                    s.spawn(move || {
                        let mut col = vec![0.0f32; g.patch() * g.pixels()];
                        for (si, out_s) in out_chunk.chunks_mut(sample_out).enumerate() {
                            let ni = gi * per + si;
                            im2col::conv_forward_sample(
                                x.sample(ni),
                                weight,
                                bias,
                                &g,
                                &mut col,
                                out_s,
                            );
                        }
                    });
                }
            });
        }
        // Recycle a cache left by a forward that never ran backward
        // (inference), so repeated eval forwards don't drain the pool.
        if let Some(old) = self.cached_input.take() {
            ws.give4(old);
        }
        self.cached_input = Some(ws.t4_copy(x));
        out
    }

    /// Backward pass: consumes `grad_out`, accumulates weight/bias grads,
    /// returns the gradient with respect to the input. Convenience wrapper
    /// over [`backward_ws`](Self::backward_ws) with a throwaway workspace.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        match self.conv_impl {
            ConvImpl::Naive => self.backward_naive(grad_out),
            ConvImpl::Im2colGemm => self.backward_gemm(grad_out, &mut Workspace::default()),
        }
    }

    /// Backward pass drawing all scratch from `ws`; the input cache taken
    /// during forward is recycled back into the pool.
    pub fn backward_ws(&mut self, grad_out: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        match self.conv_impl {
            // The naive path keeps its allocating rayon partials — it
            // exists for differential testing, not throughput.
            ConvImpl::Naive => self.backward_naive(grad_out),
            ConvImpl::Im2colGemm => self.backward_gemm(grad_out, ws),
        }
    }

    /// im2col + blocked-GEMM backward. Per-sample partial gradients are
    /// computed on scoped threads (samples in contiguous blocks) and
    /// reduced in sample order, matching the naive path's reduction, so
    /// results do not depend on the thread budget.
    fn backward_gemm(&mut self, grad_out: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        let Some(x) = self.cached_input.take() else {
            panic!("backward called before forward")
        };
        let (n, _, h, w) = x.shape();
        assert_eq!(grad_out.shape(), (n, self.c_out, h, w));
        let g = ConvGeometry::same(self.c_in, h, w, self.kernel);
        let (kp, c_out) = (g.patch(), self.c_out);
        // transpose overwrites every element, so scratch contents are fine.
        let mut wt_buf = ws.take_scratch(kp * c_out);
        gemm::transpose(c_out, kp, &self.weight, &mut wt_buf);
        let wt = &wt_buf;
        let wlen = self.weight.len();
        let sample_in = self.c_in * h * w;
        // col2im accumulates, so the input gradient must start zeroed.
        let mut grad_in = ws.t4_zeroed(n, self.c_in, h, w);
        let threads = gemm::resolved_threads(n.max(1));
        if threads <= 1 || n <= 1 {
            // Serial path: the per-sample (wg, bg) partials live in two
            // pooled buffers zeroed per sample and reduced immediately —
            // identical FP order to collecting them first (each partial is
            // an independent zero-seeded sum, and the reduction still runs
            // in ascending sample order), with no per-sample allocation.
            let mut col = ws.take_scratch(kp * g.pixels());
            let mut gcol = ws.take_scratch(kp * g.pixels());
            let mut wg = ws.take_scratch(wlen);
            let mut bg = ws.take_scratch(c_out);
            for (ni, gin_s) in grad_in.data_mut().chunks_mut(sample_in).enumerate() {
                wg.fill(0.0);
                bg.fill(0.0);
                im2col::conv_backward_sample(
                    x.sample(ni),
                    grad_out.sample(ni),
                    wt,
                    &g,
                    &mut col,
                    &mut gcol,
                    gin_s,
                    &mut wg,
                    &mut bg,
                );
                for (acc, v) in self.wgrad.iter_mut().zip(&wg) {
                    *acc += v;
                }
                for (acc, v) in self.bgrad.iter_mut().zip(&bg) {
                    *acc += v;
                }
            }
            ws.give(col);
            ws.give(gcol);
            ws.give(wg);
            ws.give(bg);
        } else {
            // Per-sample (wg, bg) partials in sample order, exactly like
            // the naive path — the reduction order (and thus rounding) is
            // fixed no matter how samples were distributed over threads.
            let mut partials: Vec<(Vec<f32>, Vec<f32>)> = Vec::with_capacity(n);
            let per = n.div_ceil(threads);
            let x = &x;
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for (gi, gin_chunk) in grad_in.data_mut().chunks_mut(per * sample_in).enumerate() {
                    handles.push(s.spawn(move || {
                        let mut col = vec![0.0f32; kp * g.pixels()];
                        let mut gcol = vec![0.0f32; kp * g.pixels()];
                        let mut group = Vec::new();
                        for (si, gin_s) in gin_chunk.chunks_mut(sample_in).enumerate() {
                            let ni = gi * per + si;
                            let mut wg = vec![0.0f32; wlen];
                            let mut bg = vec![0.0f32; c_out];
                            im2col::conv_backward_sample(
                                x.sample(ni),
                                grad_out.sample(ni),
                                wt,
                                &g,
                                &mut col,
                                &mut gcol,
                                gin_s,
                                &mut wg,
                                &mut bg,
                            );
                            group.push((wg, bg));
                        }
                        group
                    }));
                }
                for handle in handles {
                    match handle.join() {
                        Ok(group) => partials.extend(group),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            for (wg, bg) in &partials {
                for (acc, v) in self.wgrad.iter_mut().zip(wg) {
                    *acc += v;
                }
                for (acc, v) in self.bgrad.iter_mut().zip(bg) {
                    *acc += v;
                }
            }
        }
        ws.give(wt_buf);
        ws.give4(x);
        grad_in
    }

    /// Reference backward: direct loop nest with per-sample partials.
    fn backward_naive(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let Some(x) = self.cached_input.take() else {
            panic!("backward called before forward")
        };
        let (n, _, h, w) = x.shape();
        let k = self.kernel;
        let pad = k / 2;
        assert_eq!(grad_out.shape(), (n, self.c_out, h, w));

        // Per-sample partial results, reduced afterwards. The weight-grad
        // buffers are small relative to activations, so the reduction is
        // cheap and keeps the hot loops lock-free.
        struct Partial {
            gin: Vec<f32>,
            wg: Vec<f32>,
            bg: Vec<f32>,
        }
        let c_in = self.c_in;
        let c_out = self.c_out;
        let weight = &self.weight;
        let partials: Vec<Partial> = (0..n)
            .into_par_iter()
            .map(|ni| {
                let x_s = x.sample(ni);
                let g_s = grad_out.sample(ni);
                let mut gin = vec![0.0f32; c_in * h * w];
                let mut wg = vec![0.0f32; weight.len()];
                let mut bg = vec![0.0f32; c_out];
                for co in 0..c_out {
                    for y in 0..h {
                        for xo in 0..w {
                            let g = g_s[(co * h + y) * w + xo];
                            if g == 0.0 {
                                continue;
                            }
                            bg[co] += g;
                            for ci in 0..c_in {
                                let x_base = ci * h * w;
                                let w_base = ((co * c_in + ci) * k) * k;
                                for ky in 0..k {
                                    let yy = y as isize + ky as isize - pad as isize;
                                    if yy < 0 || yy >= h as isize {
                                        continue;
                                    }
                                    let row = x_base + (yy as usize) * w;
                                    let wrow = w_base + ky * k;
                                    for kx in 0..k {
                                        let xx = xo as isize + kx as isize - pad as isize;
                                        if xx < 0 || xx >= w as isize {
                                            continue;
                                        }
                                        wg[wrow + kx] += x_s[row + xx as usize] * g;
                                        gin[row + xx as usize] += weight[wrow + kx] * g;
                                    }
                                }
                            }
                        }
                    }
                }
                Partial { gin, wg, bg }
            })
            .collect();

        let mut grad_in = Tensor4::zeros(n, c_in, h, w);
        for (ni, p) in partials.iter().enumerate() {
            grad_in.sample_mut(ni).copy_from_slice(&p.gin);
            for (acc, v) in self.wgrad.iter_mut().zip(&p.wg) {
                *acc += v;
            }
            for (acc, v) in self.bgrad.iter_mut().zip(&p.bg) {
                *acc += v;
            }
        }
        grad_in
    }

    /// Visit `(weight, grad)` pairs.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        f(&mut self.weight, &mut self.wgrad);
        f(&mut self.bias, &mut self.bgrad);
    }

    /// Restore transient buffers after deserialization.
    pub fn rebuild_buffers(&mut self) {
        self.wgrad = vec![0.0; self.weight.len()];
        self.bgrad = vec![0.0; self.bias.len()];
        self.cached_input = None;
    }

    /// Forward FLOPs for one sample at `h × w`.
    pub fn flops(&self, h: usize, w: usize) -> f64 {
        2.0 * (self.kernel * self.kernel * self.c_in * self.c_out * h * w) as f64
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

/// Per-channel batch normalization with learnable scale/shift and running
/// statistics for inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Channel count.
    pub channels: usize,
    /// Learnable scale γ.
    pub gamma: Vec<f32>,
    /// Learnable shift β.
    pub beta: Vec<f32>,
    /// Running mean (inference).
    pub running_mean: Vec<f32>,
    /// Running variance (inference).
    pub running_var: Vec<f32>,
    /// Exponential-average momentum for running stats.
    pub momentum: f32,
    /// Numerical floor added to variances.
    pub eps: f32,
    #[serde(skip)]
    ggrad: Vec<f32>,
    #[serde(skip)]
    bgrad: Vec<f32>,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor4,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Identity-initialized batch norm.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            ggrad: vec![0.0; channels],
            bgrad: vec![0.0; channels],
            cache: None,
        }
    }

    /// Forward pass. `training` selects batch statistics (and updates the
    /// running averages) versus running statistics. Convenience wrapper
    /// over [`forward_ws`](Self::forward_ws) with a throwaway workspace.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        self.forward_ws(x, training, &mut Workspace::default())
    }

    /// Forward pass drawing the output, `x̂` cache and per-channel stat
    /// buffers from `ws`.
    pub fn forward_ws(&mut self, x: &Tensor4, training: bool, ws: &mut Workspace) -> Tensor4 {
        assert_eq!(x.c, self.channels, "batchnorm channel mismatch");
        let (n, c, h, w) = x.shape();
        let per_c = (n * h * w) as f32;
        // Every element of `out` (and `xhat`) is written below.
        let mut out = ws.t4_scratch(n, c, h, w);
        if training {
            let mut mean = ws.take_zeroed(c);
            let mut var = ws.take_zeroed(c);
            for ni in 0..n {
                let s = x.sample(ni);
                for ci in 0..c {
                    for v in &s[ci * h * w..(ci + 1) * h * w] {
                        mean[ci] += v;
                    }
                }
            }
            mean.iter_mut().for_each(|m| *m /= per_c);
            for ni in 0..n {
                let s = x.sample(ni);
                for ci in 0..c {
                    for v in &s[ci * h * w..(ci + 1) * h * w] {
                        let d = v - mean[ci];
                        var[ci] += d * d;
                    }
                }
            }
            var.iter_mut().for_each(|v| *v /= per_c);
            let mut inv_std = ws.take_scratch(c);
            for (is, v) in inv_std.iter_mut().zip(&var) {
                *is = 1.0 / (v + self.eps).sqrt();
            }
            let mut xhat = ws.t4_scratch(n, c, h, w);
            for ni in 0..n {
                let xs = x.sample(ni);
                let xh = xhat.sample_mut(ni);
                let os = out.sample_mut(ni);
                for ci in 0..c {
                    let (m, is, g, b) = (mean[ci], inv_std[ci], self.gamma[ci], self.beta[ci]);
                    for i in ci * h * w..(ci + 1) * h * w {
                        let norm = (xs[i] - m) * is;
                        xh[i] = norm;
                        os[i] = g * norm + b;
                    }
                }
            }
            for ci in 0..c {
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
            }
            ws.give(mean);
            ws.give(var);
            // Recycle a cache left by a forward that never ran backward.
            if let Some(old) = self.cache.take() {
                ws.give4(old.xhat);
                ws.give(old.inv_std);
            }
            self.cache = Some(BnCache { xhat, inv_std });
        } else {
            for ni in 0..n {
                let xs = x.sample(ni);
                let os = out.sample_mut(ni);
                for ci in 0..c {
                    let m = self.running_mean[ci];
                    let is = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                    let (g, b) = (self.gamma[ci], self.beta[ci]);
                    for i in ci * h * w..(ci + 1) * h * w {
                        os[i] = g * (xs[i] - m) * is + b;
                    }
                }
            }
        }
        out
    }

    /// Backward through the training-mode normalization. Convenience
    /// wrapper over [`backward_owned`](Self::backward_owned).
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        self.backward_owned(grad_out.clone(), &mut Workspace::default())
    }

    /// Backward through the training-mode normalization, writing the input
    /// gradient in place over `grad_out` (each element is read exactly
    /// once before its slot is overwritten) and recycling the `x̂` cache.
    pub fn backward_owned(&mut self, mut grad_out: Tensor4, ws: &mut Workspace) -> Tensor4 {
        let Some(cache) = self.cache.take() else {
            panic!("backward before training forward")
        };
        let (n, c, h, w) = grad_out.shape();
        let per_c = (n * h * w) as f32;
        // Channel reductions: Σg, Σ(g·xhat).
        let mut sum_g = ws.take_zeroed(c);
        let mut sum_gx = ws.take_zeroed(c);
        for ni in 0..n {
            let gs = grad_out.sample(ni);
            let xh = cache.xhat.sample(ni);
            for ci in 0..c {
                for i in ci * h * w..(ci + 1) * h * w {
                    sum_g[ci] += gs[i];
                    sum_gx[ci] += gs[i] * xh[i];
                }
            }
        }
        for ci in 0..c {
            self.bgrad[ci] += sum_g[ci];
            self.ggrad[ci] += sum_gx[ci];
        }
        for ni in 0..n {
            let xh = cache.xhat.sample(ni);
            let gi = grad_out.sample_mut(ni);
            for ci in 0..c {
                let scale = self.gamma[ci] * cache.inv_std[ci] / per_c;
                let (sg, sgx) = (sum_g[ci], sum_gx[ci]);
                for i in ci * h * w..(ci + 1) * h * w {
                    gi[i] = scale * (per_c * gi[i] - sg - xh[i] * sgx);
                }
            }
        }
        ws.give(sum_g);
        ws.give(sum_gx);
        ws.give4(cache.xhat);
        ws.give(cache.inv_std);
        grad_out
    }

    /// Visit `(param, grad)` pairs (γ then β).
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        f(&mut self.gamma, &mut self.ggrad);
        f(&mut self.beta, &mut self.bgrad);
    }

    /// Restore transient buffers after deserialization.
    pub fn rebuild_buffers(&mut self) {
        self.ggrad = vec![0.0; self.channels];
        self.bgrad = vec![0.0; self.channels];
        self.cache = None;
    }

    /// Forward FLOPs for one sample at `h × w` (scale + shift).
    pub fn flops(&self, h: usize, w: usize) -> f64 {
        2.0 * (self.channels * h * w) as f64
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Elementwise rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Vec<bool>,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Relu::default()
    }

    /// Forward pass; records the activation mask. Clones the input — the
    /// graph hot path uses [`forward_owned`](Self::forward_owned) instead.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        self.forward_owned(x.clone())
    }

    /// In-place forward over an owned tensor: rectifies `x` directly and
    /// records the activation mask, with no copy. The mask capacity
    /// persists across calls, so steady state allocates nothing.
    pub fn forward_owned(&mut self, mut x: Tensor4) -> Tensor4 {
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in x.data_mut() {
            let on = *v > 0.0;
            self.mask.push(on);
            if !on {
                *v = 0.0;
            }
        }
        x
    }

    /// Backward: zero gradients where the forward input was ≤ 0. Clones
    /// the gradient — the graph hot path uses
    /// [`backward_owned`](Self::backward_owned) instead.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        self.backward_owned(grad_out.clone())
    }

    /// In-place backward over an owned gradient tensor.
    pub fn backward_owned(&mut self, mut grad_out: Tensor4) -> Tensor4 {
        assert_eq!(grad_out.len(), self.mask.len(), "relu backward shape");
        for (v, &on) in grad_out.data_mut().iter_mut().zip(&self.mask) {
            if !on {
                *v = 0.0;
            }
        }
        grad_out
    }

    /// Forward FLOPs for one sample with `c` channels at `h × w`.
    pub fn flops(&self, c: usize, h: usize, w: usize) -> f64 {
        (c * h * w) as f64
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so inference is
/// a plain pass-through. The layer owns its RNG (seeded at construction)
/// to keep training reproducible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    seed: u64,
    #[serde(skip)]
    draws: u64,
    #[serde(skip)]
    mask: Vec<bool>,
}

impl Dropout {
    /// New dropout layer.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            seed,
            draws: 0,
            mask: Vec::new(),
        }
    }

    /// Forward pass. In training mode a fresh mask is drawn; in inference
    /// the input passes through unchanged. Clones the input — owners use
    /// [`forward_owned`](Self::forward_owned) instead.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        self.forward_owned(x.clone(), training)
    }

    /// In-place forward over an owned tensor: masks and rescales `x`
    /// directly, with no copy.
    pub fn forward_owned(&mut self, mut x: Tensor4, training: bool) -> Tensor4 {
        if !training || self.p == 0.0 {
            self.mask.clear();
            return x;
        }
        use rand::{Rng, SeedableRng};
        // A fresh, deterministic stream per forward call.
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed.wrapping_add(self.draws.wrapping_mul(0x9E37_79B9)),
        );
        self.draws += 1;
        let keep_scale = 1.0 / (1.0 - self.p);
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in x.data_mut() {
            let keep = !rng.gen_bool(f64::from(self.p));
            self.mask.push(keep);
            *v = if keep { *v * keep_scale } else { 0.0 };
        }
        x
    }

    /// Backward: route gradients through the surviving units with the same
    /// scale. Must follow a training-mode forward; after an inference
    /// forward the gradient passes through unchanged.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        self.backward_owned(grad_out.clone())
    }

    /// In-place backward over an owned gradient tensor.
    pub fn backward_owned(&mut self, mut grad_out: Tensor4) -> Tensor4 {
        if self.mask.is_empty() {
            return grad_out;
        }
        assert_eq!(grad_out.len(), self.mask.len(), "dropout backward shape");
        let keep_scale = 1.0 / (1.0 - self.p);
        for (v, &keep) in grad_out.data_mut().iter_mut().zip(&self.mask) {
            *v = if keep { *v * keep_scale } else { 0.0 };
        }
        grad_out
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// 2×2 max pooling with stride 2; odd trailing rows/columns are dropped.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaxPool2d {
    #[serde(skip)]
    argmax: Vec<usize>,
    #[serde(skip)]
    in_shape: (usize, usize, usize, usize),
}

impl MaxPool2d {
    /// New pool layer.
    pub fn new() -> Self {
        MaxPool2d::default()
    }

    /// Forward pass; records argmax indices for routing gradients.
    /// Convenience wrapper over [`forward_ws`](Self::forward_ws).
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        self.forward_ws(x, &mut Workspace::default())
    }

    /// Forward pass drawing the output from `ws`. The argmax index buffer
    /// persists in the layer, so steady state allocates nothing.
    pub fn forward_ws(&mut self, x: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        let (oh, ow) = ((h / 2).max(1), (w / 2).max(1));
        // Every output element is written below.
        let mut out = ws.t4_scratch(n, c, oh, ow);
        self.argmax.clear();
        self.argmax.resize(n * c * oh * ow, 0);
        self.in_shape = x.shape();
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let (y, xx) = (oy * 2 + dy, ox * 2 + dx);
                                if y >= h || xx >= w {
                                    continue;
                                }
                                let idx = x.index(ni, ci, y, xx);
                                let v = x.data()[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = out.index(ni, ci, oy, ox);
                        out.data_mut()[oidx] = best;
                        self.argmax[oidx] = best_idx;
                    }
                }
            }
        }
        out
    }

    /// Backward: route each gradient to its argmax location. Convenience
    /// wrapper over [`backward_ws`](Self::backward_ws).
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        self.backward_ws(grad_out, &mut Workspace::default())
    }

    /// Backward drawing the (zero-seeded — most positions receive no
    /// gradient) input-gradient tensor from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        let (n, c, h, w) = self.in_shape;
        let mut grad_in = ws.t4_zeroed(n, c, h, w);
        for (o, &src) in self.argmax.iter().enumerate() {
            grad_in.data_mut()[src] += grad_out.data()[o];
        }
        grad_in
    }

    /// Forward FLOPs (comparisons) for one sample with `c` channels.
    pub fn flops(&self, c: usize, h: usize, w: usize) -> f64 {
        3.0 * (c * (h / 2).max(1) * (w / 2).max(1)) as f64
    }
}

// ---------------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------------

/// Global average pooling: NCHW → (N, C).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool {
    #[serde(skip)]
    in_shape: (usize, usize, usize, usize),
}

impl GlobalAvgPool {
    /// New layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }

    /// Forward pass. Convenience wrapper over
    /// [`forward_ws`](Self::forward_ws).
    pub fn forward(&mut self, x: &Tensor4) -> Tensor2 {
        self.forward_ws(x, &mut Workspace::default())
    }

    /// Forward pass drawing the pooled matrix from `ws`.
    pub fn forward_ws(&mut self, x: &Tensor4, ws: &mut Workspace) -> Tensor2 {
        let (n, c, h, w) = x.shape();
        self.in_shape = x.shape();
        let scale = 1.0 / (h * w) as f32;
        // Every element is written below.
        let mut out = ws.t2_scratch(n, c);
        for ni in 0..n {
            let s = x.sample(ni);
            let row = out.row_mut(ni);
            for ci in 0..c {
                let sum: f32 = s[ci * h * w..(ci + 1) * h * w].iter().sum();
                row[ci] = sum * scale;
            }
        }
        out
    }

    /// Backward: spread each channel gradient uniformly over `h × w`.
    /// Convenience wrapper over [`backward_ws`](Self::backward_ws).
    pub fn backward(&mut self, grad_out: &Tensor2) -> Tensor4 {
        self.backward_ws(grad_out, &mut Workspace::default())
    }

    /// Backward drawing the input-gradient tensor from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor2, ws: &mut Workspace) -> Tensor4 {
        let (n, c, h, w) = self.in_shape;
        let scale = 1.0 / (h * w) as f32;
        // Every element is written below (full channel fill).
        let mut grad_in = ws.t4_scratch(n, c, h, w);
        for ni in 0..n {
            let row = grad_out.row(ni);
            let gi = grad_in.sample_mut(ni);
            for ci in 0..c {
                let g = row[ci] * scale;
                for v in &mut gi[ci * h * w..(ci + 1) * h * w] {
                    *v = g;
                }
            }
        }
        grad_in
    }
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer `y = x·Wᵀ + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Input features.
    pub d_in: usize,
    /// Output features.
    pub d_out: usize,
    /// Weights `[d_out][d_in]` flattened.
    pub weight: Vec<f32>,
    /// Bias `[d_out]`.
    pub bias: Vec<f32>,
    /// Selected compute backend.
    #[serde(default)]
    pub dense_impl: DenseImpl,
    #[serde(skip)]
    wgrad: Vec<f32>,
    #[serde(skip)]
    bgrad: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Tensor2>,
}

impl Dense {
    /// Xavier-initialized dense layer.
    pub fn new<R: Rng + ?Sized>(d_in: usize, d_out: usize, rng: &mut R) -> Self {
        let mut weight = vec![0.0f32; d_out * d_in];
        xavier_normal(rng, d_in, d_out, &mut weight);
        Dense {
            d_in,
            d_out,
            weight,
            bias: vec![0.0; d_out],
            dense_impl: DenseImpl::default(),
            wgrad: vec![0.0; d_out * d_in],
            bgrad: vec![0.0; d_out],
            cached_input: None,
        }
    }

    /// Select the compute backend.
    pub fn set_impl(&mut self, dense_impl: DenseImpl) {
        self.dense_impl = dense_impl;
    }

    /// Forward pass; caches the input. Convenience wrapper over
    /// [`forward_ws`](Self::forward_ws) with a throwaway workspace.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        self.forward_ws(x, &mut Workspace::default())
    }

    /// Forward pass drawing the output, the `Wᵀ` panel and the input
    /// cache from `ws`.
    pub fn forward_ws(&mut self, x: &Tensor2, ws: &mut Workspace) -> Tensor2 {
        assert_eq!(x.cols, self.d_in, "dense input width mismatch");
        match self.dense_impl {
            DenseImpl::Naive => self.forward_naive(x, ws),
            DenseImpl::Gemm => self.forward_gemm(x, ws),
        }
    }

    /// Reference forward: one strictly sequential dot per output element.
    fn forward_naive(&mut self, x: &Tensor2, ws: &mut Workspace) -> Tensor2 {
        // Every output element is written below.
        let mut out = ws.t2_scratch(x.rows, self.d_out);
        for r in 0..x.rows {
            let xi = x.row(r);
            let or = out.row_mut(r);
            for (o, out_v) in or.iter_mut().enumerate() {
                let wrow = &self.weight[o * self.d_in..(o + 1) * self.d_in];
                let mut acc = self.bias[o];
                for (a, b) in xi.iter().zip(wrow) {
                    acc += a * b;
                }
                *out_v = acc;
            }
        }
        // Recycle a cache left by a forward that never ran backward
        // (inference), so repeated eval forwards don't drain the pool.
        if let Some(old) = self.cached_input.take() {
            ws.give2(old);
        }
        self.cached_input = Some(ws.t2_copy(x));
        out
    }

    /// Blocked-GEMM forward, bitwise identical to the naive path: the
    /// output is seeded with the bias and [`gemm::gemm_nn_seq`] extends
    /// each element as one strict ascending-`i` sum `bias + Σ x[i]·w[i]` —
    /// exactly the naive loop's order. Rows of the output split across
    /// scoped threads under the intra-op budget; each element is produced
    /// by one thread, so any budget gives identical bits.
    fn forward_gemm(&mut self, x: &Tensor2, ws: &mut Workspace) -> Tensor2 {
        let rows = x.rows;
        // B = Wᵀ, materialized so the shared axis (d_in) is the GEMM's
        // sequential k axis. transpose overwrites every element.
        let mut wt = ws.take_scratch(self.d_in * self.d_out);
        gemm::transpose(self.d_out, self.d_in, &self.weight, &mut wt);
        let mut out = ws.t2_scratch(rows, self.d_out);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&self.bias);
        }
        gemm::gemm_nn_seq(
            rows,
            self.d_out,
            self.d_in,
            x.data(),
            &wt,
            out.data_mut(),
            gemm::resolved_threads(rows.max(1)),
        );
        ws.give(wt);
        // Recycle a cache left by a forward that never ran backward
        // (inference), so repeated eval forwards don't drain the pool.
        if let Some(old) = self.cached_input.take() {
            ws.give2(old);
        }
        self.cached_input = Some(ws.t2_copy(x));
        out
    }

    /// Backward pass. Convenience wrapper over
    /// [`backward_ws`](Self::backward_ws) with a throwaway workspace.
    pub fn backward(&mut self, grad_out: &Tensor2) -> Tensor2 {
        self.backward_ws(grad_out, &mut Workspace::default())
    }

    /// Backward pass drawing all scratch from `ws`; the input cache is
    /// recycled back into the pool.
    pub fn backward_ws(&mut self, grad_out: &Tensor2, ws: &mut Workspace) -> Tensor2 {
        assert_eq!(grad_out.cols, self.d_out);
        match self.dense_impl {
            DenseImpl::Naive => self.backward_naive(grad_out, ws),
            DenseImpl::Gemm => self.backward_gemm(grad_out, ws),
        }
    }

    /// Reference backward: skips zero output-gradients, accumulates
    /// directly into the persistent gradient buffers.
    fn backward_naive(&mut self, grad_out: &Tensor2, ws: &mut Workspace) -> Tensor2 {
        let Some(x) = self.cached_input.take() else {
            panic!("backward called before forward")
        };
        let mut grad_in = ws.t2_zeroed(x.rows, self.d_in);
        for r in 0..x.rows {
            let g = grad_out.row(r);
            let xi = x.row(r);
            for (o, &go) in g.iter().enumerate() {
                if go == 0.0 {
                    continue;
                }
                self.bgrad[o] += go;
                let wrow = &self.weight[o * self.d_in..(o + 1) * self.d_in];
                let wgrow = &mut self.wgrad[o * self.d_in..(o + 1) * self.d_in];
                let gi = grad_in.row_mut(r);
                for i in 0..self.d_in {
                    wgrow[i] += xi[i] * go;
                    gi[i] += wrow[i] * go;
                }
            }
        }
        ws.give2(x);
        grad_in
    }

    /// Blocked-GEMM backward, bitwise identical to the naive path:
    ///
    /// - `wgrad += gᵀ·x` via [`gemm::gemm_nn_seq`] — per element the
    ///   shared axis is the batch row `r`, walked ascending and seeded
    ///   from the existing `wgrad`, which is the naive `r`-outer loop's
    ///   exact order;
    /// - `grad_in = g·W`, zero-seeded, shared axis `o` ascending — again
    ///   the naive order;
    /// - `bgrad` via the plain column-sum loop.
    ///
    /// The naive path *skips* `go == 0.0` terms; the GEMM adds them. The
    /// added products are `±0.0`, and IEEE-754 addition of `±0.0` onto an
    /// accumulator that is not `-0.0` is the identity — and no accumulator
    /// here can ever reach `-0.0`, because each starts at `+0.0` (or a
    /// prior sum) and `(+0.0) + (−0.0) = +0.0` under round-to-nearest. So
    /// skipping versus adding zeros produces identical bits (pinned by the
    /// dense equivalence tests).
    fn backward_gemm(&mut self, grad_out: &Tensor2, ws: &mut Workspace) -> Tensor2 {
        let Some(x) = self.cached_input.take() else {
            panic!("backward called before forward")
        };
        let rows = x.rows;
        for r in 0..rows {
            for (o, &go) in grad_out.row(r).iter().enumerate() {
                self.bgrad[o] += go;
            }
        }
        // A = gᵀ so the shared axis (rows) is the GEMM's sequential k.
        let mut gt = ws.take_scratch(rows * self.d_out);
        gemm::transpose(rows, self.d_out, grad_out.data(), &mut gt);
        gemm::gemm_nn_seq(
            self.d_out,
            self.d_in,
            rows,
            &gt,
            x.data(),
            &mut self.wgrad,
            gemm::resolved_threads(self.d_out.max(1)),
        );
        ws.give(gt);
        let mut grad_in = ws.t2_zeroed(rows, self.d_in);
        gemm::gemm_nn_seq(
            rows,
            self.d_in,
            self.d_out,
            grad_out.data(),
            &self.weight,
            grad_in.data_mut(),
            gemm::resolved_threads(rows.max(1)),
        );
        ws.give2(x);
        grad_in
    }

    /// Visit `(param, grad)` pairs.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        f(&mut self.weight, &mut self.wgrad);
        f(&mut self.bias, &mut self.bgrad);
    }

    /// Restore transient buffers after deserialization.
    pub fn rebuild_buffers(&mut self) {
        self.wgrad = vec![0.0; self.weight.len()];
        self.bgrad = vec![0.0; self.bias.len()];
        self.cached_input = None;
    }

    /// Forward FLOPs for one sample.
    pub fn flops(&self) -> f64 {
        2.0 * (self.d_in * self.d_out) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Finite-difference check of a scalar loss `L = Σ out²/2` through a
    /// layer's forward/backward.
    fn conv_numeric_grad_check() -> (f32, f32) {
        let mut r = rng(1);
        let mut conv = Conv2d::new(2, 3, 3, &mut r);
        let x = {
            let mut t = Tensor4::zeros(2, 2, 5, 5);
            let mut vals = vec![0.0f32; t.len()];
            he_normal(&mut r, 8, &mut vals);
            t.data_mut().copy_from_slice(&vals);
            t
        };
        // Analytic gradient of L wrt one weight.
        let out = conv.forward(&x);
        let grad_out = out; // dL/dout = out for L = Σout²/2
        let _ = conv.backward(&grad_out);
        let analytic = conv.wgrad[7];
        // Numeric.
        let h = 1e-3f32;
        let loss_with = |conv: &mut Conv2d, delta: f32| {
            conv.weight[7] += delta;
            let o = conv.forward(&x);
            conv.weight[7] -= delta;
            conv.cached_input = None;
            o.data().iter().map(|&v| v * v * 0.5).sum::<f32>()
        };
        let numeric = (loss_with(&mut conv, h) - loss_with(&mut conv, -h)) / (2.0 * h);
        (analytic, numeric)
    }

    #[test]
    fn conv_weight_gradient_matches_finite_difference() {
        let (analytic, numeric) = conv_numeric_grad_check();
        let scale = numeric.abs().max(1.0);
        assert!(
            (analytic - numeric).abs() / scale < 2e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut r = rng(2);
        let mut conv = Conv2d::new(1, 1, 3, &mut r);
        conv.weight.iter_mut().for_each(|w| *w = 0.0);
        conv.weight[4] = 1.0; // center tap
        conv.bias[0] = 0.0;
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_input_gradient_shape_and_padding() {
        let mut r = rng(3);
        let mut conv = Conv2d::new(1, 2, 3, &mut r);
        let x = Tensor4::zeros(1, 1, 4, 4);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), (1, 2, 4, 4));
        let gi = conv.backward(&Tensor4::zeros(1, 2, 4, 4));
        assert_eq!(gi.shape(), (1, 1, 4, 4));
    }

    #[test]
    fn batchnorm_normalizes_training_batch() {
        let mut bn = BatchNorm2d::new(2);
        let mut x = Tensor4::zeros(4, 2, 3, 3);
        let mut r = rng(4);
        for v in x.data_mut() {
            *v = r.gen_range(-5.0..5.0);
        }
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1.
        let (n, c, h, w) = y.shape();
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        vals.push(y.get(ni, ci, hi, wi));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_backward_zeroes_constant_shift() {
        // dL/dx of BN is invariant to adding a constant per channel:
        // gradient of a constant grad_out distributes to ~0.
        let mut bn = BatchNorm2d::new(1);
        let mut x = Tensor4::zeros(2, 1, 2, 2);
        let mut r = rng(5);
        for v in x.data_mut() {
            *v = r.gen_range(-1.0..1.0);
        }
        let _ = bn.forward(&x, true);
        let mut g = Tensor4::zeros(2, 1, 2, 2);
        g.data_mut().iter_mut().for_each(|v| *v = 3.0);
        let gi = bn.backward(&g);
        assert!(gi.data().iter().all(|v| v.abs() < 1e-4), "{:?}", gi.data());
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean[0] = 2.0;
        bn.running_var[0] = 4.0;
        let x = Tensor4::from_vec(1, 1, 1, 2, vec![2.0, 4.0]);
        let y = bn.forward(&x, false);
        assert!((y.data()[0] - 0.0).abs() < 1e-4);
        assert!((y.data()[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn relu_masks_forward_and_backward() {
        let mut relu = Relu::new();
        let x = Tensor4::from_vec(1, 1, 1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor4::from_vec(1, 1, 1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gi = relu.backward(&g);
        assert_eq!(gi.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_selects_max_and_routes_gradient() {
        let mut pool = MaxPool2d::new();
        let x = Tensor4::from_vec(
            1,
            1,
            4,
            4,
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x);
        assert_eq!(y.shape(), (1, 1, 2, 2));
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        let g = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let gi = pool.backward(&g);
        assert_eq!(gi.get(0, 0, 1, 1), 1.0);
        assert_eq!(gi.get(0, 0, 1, 3), 2.0);
        assert_eq!(gi.get(0, 0, 3, 1), 3.0);
        assert_eq!(gi.get(0, 0, 3, 3), 4.0);
        assert_eq!(gi.data().iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn maxpool_handles_odd_sizes() {
        let mut pool = MaxPool2d::new();
        let x = Tensor4::zeros(1, 1, 5, 5);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), (1, 1, 2, 2));
        let gi = pool.backward(&Tensor4::zeros(1, 1, 2, 2));
        assert_eq!(gi.shape(), (1, 1, 5, 5));
    }

    #[test]
    fn gap_averages_and_spreads() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor4::from_vec(1, 2, 1, 2, vec![1.0, 3.0, 10.0, 30.0]);
        let y = gap.forward(&x);
        assert_eq!(y.row(0), &[2.0, 20.0]);
        let g = Tensor2::from_vec(1, 2, vec![4.0, 8.0]);
        let gi = gap.backward(&g);
        assert_eq!(gi.data(), &[2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn dense_forward_matches_manual() {
        let mut r = rng(6);
        let mut dense = Dense::new(2, 2, &mut r);
        dense.weight = vec![1.0, 2.0, 3.0, 4.0];
        dense.bias = vec![0.5, -0.5];
        let x = Tensor2::from_vec(1, 2, vec![1.0, 1.0]);
        let y = dense.forward(&x);
        assert_eq!(y.row(0), &[3.5, 6.5]);
    }

    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut r = rng(7);
        let mut dense = Dense::new(3, 2, &mut r);
        let x = Tensor2::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        let out = dense.forward(&x);
        let _ = dense.backward(&out);
        let analytic = dense.wgrad[1];
        let h = 1e-3f32;
        let loss = |d: &mut Dense, delta: f32| {
            d.weight[1] += delta;
            let o = d.forward(&x);
            d.weight[1] -= delta;
            d.cached_input = None;
            o.data().iter().map(|&v| v * v * 0.5).sum::<f32>()
        };
        let numeric = (loss(&mut dense, h) - loss(&mut dense, -h)) / (2.0 * h);
        assert!(
            (analytic - numeric).abs() / numeric.abs().max(1.0) < 2e-2,
            "analytic {analytic} numeric {numeric}"
        );
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false), x);
        // Backward after inference is pass-through.
        let g = Tensor4::from_vec(1, 1, 2, 2, vec![1.0; 4]);
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn dropout_training_zeroes_and_scales() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor4::from_vec(1, 1, 8, 8, vec![1.0; 64]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let twos = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + twos, 64, "values are 0 or scaled by 1/(1-p)");
        assert!(
            zeros > 10 && zeros < 54,
            "roughly half dropped, got {zeros}"
        );
        // Backward gradient flows only through survivors.
        let g = Tensor4::from_vec(1, 1, 8, 8, vec![1.0; 64]);
        let gi = d.backward(&g);
        for (gv, yv) in gi.data().iter().zip(y.data()) {
            if *yv == 0.0 {
                assert_eq!(*gv, 0.0);
            } else {
                assert!((*gv - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor4::from_vec(1, 1, 64, 64, vec![1.0; 4096]);
        let y = d.forward(&x, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 4096.0;
        assert!(
            (mean - 1.0).abs() < 0.1,
            "inverted dropout keeps E[x], got {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn dropout_p_one_rejected() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn flops_formulas() {
        let mut r = rng(8);
        let conv = Conv2d::new(2, 4, 3, &mut r);
        assert_eq!(conv.flops(8, 8), 2.0 * (9 * 2 * 4 * 64) as f64);
        let dense = Dense::new(16, 2, &mut r);
        assert_eq!(dense.flops(), 64.0);
    }
}
