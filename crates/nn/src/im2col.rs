//! im2col/col2im lowering: convolution as matrix multiplication.
//!
//! [`im2col`] unrolls every receptive field of an input plane stack into a
//! column of a `(c_in·k·k) × (out_h·out_w)` patch matrix, so that
//!
//! - forward is `W[c_out×K] · col[K×P]` ([`conv_forward`]),
//! - the weight gradient is `g[c_out×P] · colᵀ`,
//! - the input gradient is `Wᵀ[K×c_out] · g[c_out×P]` scattered back
//!   through [`col2im`] ([`conv_backward`]),
//!
//! all running on the blocked GEMM kernels in [`crate::gemm`]. The
//! geometry is general (any stride/padding) even though the `Conv2d`
//! layer only uses stride 1 with `same` padding — the equivalence
//! proptests sweep the full space.
//!
//! Patch rows are ordered `(ci, ky, kx)` — the same order the naive
//! kernel walks — so the lowered forward accumulates products in the
//! identical sequence and agrees with the naive path to rounding.

use crate::gemm;
use crate::tensor::Tensor4;

/// Shape parameters of one convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub pad: usize,
}

impl ConvGeometry {
    /// Stride-1 `same` geometry, as used by the `Conv2d` layer.
    pub fn same(c_in: usize, h: usize, w: usize, kernel: usize) -> Self {
        ConvGeometry {
            c_in,
            h,
            w,
            kernel,
            stride: 1,
            pad: kernel / 2,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Patch length `c_in·k·k` (rows of the column matrix).
    pub fn patch(&self) -> usize {
        self.c_in * self.kernel * self.kernel
    }

    /// Output pixels per channel (columns of the column matrix).
    pub fn pixels(&self) -> usize {
        self.out_h() * self.out_w()
    }

    fn validate(&self) {
        assert!(self.stride >= 1, "stride must be at least 1");
        assert!(
            self.h + 2 * self.pad >= self.kernel && self.w + 2 * self.pad >= self.kernel,
            "kernel {k} exceeds padded input {h}x{w}+{p}",
            k = self.kernel,
            h = self.h,
            w = self.w,
            p = self.pad,
        );
    }
}

/// Unroll one sample (`c_in·h·w` contiguous) into the patch matrix
/// `dst[(c_in·k·k) × (out_h·out_w)]`, zero-filling out-of-bounds taps.
pub fn im2col(src: &[f32], g: &ConvGeometry, dst: &mut [f32]) {
    g.validate();
    let (k, s, pad, h, w) = (g.kernel, g.stride, g.pad, g.h, g.w);
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    assert_eq!(src.len(), g.c_in * h * w, "im2col: src shape mismatch");
    assert_eq!(dst.len(), g.patch() * cols, "im2col: dst shape mismatch");
    let mut row = 0;
    for ci in 0..g.c_in {
        let plane = &src[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let drow = &mut dst[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let yy = (oy * s + ky) as isize - pad as isize;
                    let seg = &mut drow[oy * ow..(oy + 1) * ow];
                    if yy < 0 || yy >= h as isize {
                        seg.fill(0.0);
                        continue;
                    }
                    let srow = &plane[(yy as usize) * w..(yy as usize + 1) * w];
                    if s == 1 {
                        // xx = ox + kx - pad is valid for ox in [lo, hi).
                        let shift = kx as isize - pad as isize;
                        let lo = ((-shift).max(0) as usize).min(ow);
                        let hi = ((w as isize - shift).clamp(0, ow as isize)) as usize;
                        let hi = hi.max(lo);
                        seg[..lo].fill(0.0);
                        seg[lo..hi].copy_from_slice(
                            &srow[(lo as isize + shift) as usize..(hi as isize + shift) as usize],
                        );
                        seg[hi..].fill(0.0);
                    } else {
                        for (ox, v) in seg.iter_mut().enumerate() {
                            let xx = (ox * s + kx) as isize - pad as isize;
                            *v = if xx < 0 || xx >= w as isize {
                                0.0
                            } else {
                                srow[xx as usize]
                            };
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatter-add the patch matrix back onto an input-shaped buffer: the
/// adjoint of [`im2col`]. `dst` accumulates (caller zeroes it).
pub fn col2im(cols_mat: &[f32], g: &ConvGeometry, dst: &mut [f32]) {
    g.validate();
    let (k, s, pad, h, w) = (g.kernel, g.stride, g.pad, g.h, g.w);
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    assert_eq!(dst.len(), g.c_in * h * w, "col2im: dst shape mismatch");
    assert_eq!(
        cols_mat.len(),
        g.patch() * cols,
        "col2im: src shape mismatch"
    );
    let mut row = 0;
    for ci in 0..g.c_in {
        let plane = &mut dst[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let srow_mat = &cols_mat[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let yy = (oy * s + ky) as isize - pad as isize;
                    if yy < 0 || yy >= h as isize {
                        continue;
                    }
                    let seg = &srow_mat[oy * ow..(oy + 1) * ow];
                    let drow = &mut plane[(yy as usize) * w..(yy as usize + 1) * w];
                    if s == 1 {
                        let shift = kx as isize - pad as isize;
                        let lo = ((-shift).max(0) as usize).min(ow);
                        let hi = (((w as isize - shift).clamp(0, ow as isize)) as usize).max(lo);
                        for (dv, sv) in drow
                            [(lo as isize + shift) as usize..(hi as isize + shift) as usize]
                            .iter_mut()
                            .zip(&seg[lo..hi])
                        {
                            *dv += sv;
                        }
                    } else {
                        for (ox, sv) in seg.iter().enumerate() {
                            let xx = (ox * s + kx) as isize - pad as isize;
                            if xx >= 0 && xx < w as isize {
                                drow[xx as usize] += sv;
                            }
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

/// Lowered forward for one sample: `out_s[c_out×P] = bias ⊕ W·col(x_s)`.
/// `col_buf` is a caller-owned scratch of length `patch·pixels` so the
/// per-batch driver can reuse one allocation per thread.
pub fn conv_forward_sample(
    x_s: &[f32],
    weight: &[f32],
    bias: &[f32],
    g: &ConvGeometry,
    col_buf: &mut [f32],
    out_s: &mut [f32],
) {
    let (kp, p) = (g.patch(), g.pixels());
    let c_out = bias.len();
    assert_eq!(weight.len(), c_out * kp, "conv weight shape mismatch");
    assert_eq!(out_s.len(), c_out * p, "conv output shape mismatch");
    im2col(x_s, g, col_buf);
    for (co, orow) in out_s.chunks_mut(p).enumerate() {
        orow.fill(bias[co]);
    }
    gemm::gemm_nn(c_out, p, kp, weight, col_buf, out_s, 1);
}

/// Lowered backward for one sample. Accumulates the weight/bias gradients
/// into `wg`/`bg` and writes the input gradient into `gin_s`. `wt` is the
/// pre-transposed weight (`K×c_out`); `col_buf`/`gcol_buf` are scratch.
#[allow(clippy::too_many_arguments)]
pub fn conv_backward_sample(
    x_s: &[f32],
    g_s: &[f32],
    wt: &[f32],
    g: &ConvGeometry,
    col_buf: &mut [f32],
    gcol_buf: &mut [f32],
    gin_s: &mut [f32],
    wg: &mut [f32],
    bg: &mut [f32],
) {
    let (kp, p) = (g.patch(), g.pixels());
    let c_out = bg.len();
    assert_eq!(g_s.len(), c_out * p, "conv grad-out shape mismatch");
    assert_eq!(
        wt.len(),
        kp * c_out,
        "conv transposed-weight shape mismatch"
    );
    im2col(x_s, g, col_buf);
    // Bias gradient: row sums of g_s.
    for (co, grow) in g_s.chunks(p).enumerate() {
        let mut lanes = 0.0f32;
        for v in grow {
            lanes += v;
        }
        bg[co] += lanes;
    }
    // Weight gradient: wg[c_out×K] += g_s · colᵀ.
    gemm::gemm_nt(c_out, kp, p, g_s, col_buf, wg, 1);
    // Input gradient: gcol[K×P] = Wᵀ · g_s, scattered back by col2im.
    gcol_buf.fill(0.0);
    gemm::gemm_nn(kp, p, c_out, wt, g_s, gcol_buf, 1);
    col2im(gcol_buf, g, gin_s);
}

/// Batched lowered forward over a whole tensor (serial driver; the layer
/// runs its own thread-budgeted version). Used directly by tests to sweep
/// arbitrary stride/padding geometries.
pub fn conv_forward(x: &Tensor4, weight: &[f32], bias: &[f32], g: &ConvGeometry) -> Tensor4 {
    assert_eq!(x.c, g.c_in, "conv input channel mismatch");
    let c_out = bias.len();
    let mut out = Tensor4::zeros(x.n, c_out, g.out_h(), g.out_w());
    let mut col_buf = vec![0.0f32; g.patch() * g.pixels()];
    for ni in 0..x.n {
        conv_forward_sample(
            x.sample(ni),
            weight,
            bias,
            g,
            &mut col_buf,
            out.sample_mut(ni),
        );
    }
    out
}

/// Batched lowered backward (serial driver): returns
/// `(grad_in, weight_grad, bias_grad)` with gradients summed over the
/// batch in sample order.
pub fn conv_backward(
    x: &Tensor4,
    grad_out: &Tensor4,
    weight: &[f32],
    c_out: usize,
    g: &ConvGeometry,
) -> (Tensor4, Vec<f32>, Vec<f32>) {
    assert_eq!(x.c, g.c_in, "conv input channel mismatch");
    assert_eq!(
        grad_out.shape(),
        (x.n, c_out, g.out_h(), g.out_w()),
        "conv grad-out shape mismatch"
    );
    let kp = g.patch();
    let mut wt = vec![0.0f32; kp * c_out];
    gemm::transpose(c_out, kp, weight, &mut wt);
    let mut grad_in = Tensor4::zeros(x.n, g.c_in, g.h, g.w);
    let mut wg = vec![0.0f32; weight.len()];
    let mut bg = vec![0.0f32; c_out];
    let mut col_buf = vec![0.0f32; kp * g.pixels()];
    let mut gcol_buf = vec![0.0f32; kp * g.pixels()];
    for ni in 0..x.n {
        conv_backward_sample(
            x.sample(ni),
            grad_out.sample(ni),
            &wt,
            g,
            &mut col_buf,
            &mut gcol_buf,
            grad_in.sample_mut(ni),
            &mut wg,
            &mut bg,
        );
    }
    (grad_in, wg, bg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_shapes() {
        let g = ConvGeometry::same(3, 8, 10, 5);
        assert_eq!((g.out_h(), g.out_w()), (8, 10));
        assert_eq!(g.patch(), 75);
        let strided = ConvGeometry {
            c_in: 1,
            h: 7,
            w: 7,
            kernel: 3,
            stride: 2,
            pad: 0,
        };
        assert_eq!((strided.out_h(), strided.out_w()), (3, 3));
    }

    #[test]
    fn im2col_identity_kernel_row_is_the_input() {
        // With k=1, s=1, pad=0 the patch matrix IS the input plane.
        let g = ConvGeometry {
            c_in: 2,
            h: 3,
            w: 4,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let src: Vec<f32> = (0..24).map(|v| v as f32).collect();
        let mut dst = vec![0.0f32; g.patch() * g.pixels()];
        im2col(&src, &g, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        // 1×1 input, 3×3 kernel, same padding: only the center tap hits.
        let g = ConvGeometry::same(1, 1, 1, 3);
        let mut dst = vec![7.0f32; 9];
        im2col(&[5.0], &g, &mut dst);
        assert_eq!(dst, vec![0.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn strided_im2col_matches_direct_gather() {
        let g = ConvGeometry {
            c_in: 1,
            h: 5,
            w: 6,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let src: Vec<f32> = (0..30).map(|v| v as f32 * 0.25).collect();
        let mut dst = vec![0.0f32; g.patch() * g.pixels()];
        im2col(&src, &g, &mut dst);
        let (oh, ow) = (g.out_h(), g.out_w());
        for ky in 0..3 {
            for kx in 0..3 {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let yy = (oy * 2 + ky) as isize - 1;
                        let xx = (ox * 2 + kx) as isize - 1;
                        let want = if !(0..5).contains(&yy) || !(0..6).contains(&xx) {
                            0.0
                        } else {
                            src[yy as usize * 6 + xx as usize]
                        };
                        let row = ky * 3 + kx;
                        assert_eq!(dst[row * (oh * ow) + oy * ow + ox], want);
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for any x, y — the defining
        // property of the adjoint, checked on pseudo-random data.
        let g = ConvGeometry {
            c_in: 2,
            h: 4,
            w: 5,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let nx = g.c_in * g.h * g.w;
        let ny = g.patch() * g.pixels();
        let x: Vec<f32> = (0..nx).map(|i| ((i * 37 + 11) % 17) as f32 - 8.0).collect();
        let y: Vec<f32> = (0..ny).map(|i| ((i * 53 + 3) % 13) as f32 - 6.0).collect();
        let mut cx = vec![0.0f32; ny];
        im2col(&x, &g, &mut cx);
        let mut ay = vec![0.0f32; nx];
        col2im(&y, &g, &mut ay);
        let lhs: f64 = cx.iter().zip(&y).map(|(a, b)| f64::from(a * b)).sum();
        let rhs: f64 = x.iter().zip(&ay).map(|(a, b)| f64::from(a * b)).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "exceeds padded input")]
    fn oversized_kernel_panics() {
        let g = ConvGeometry {
            c_in: 1,
            h: 2,
            w: 2,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        let mut dst = vec![0.0; 25];
        im2col(&[0.0; 4], &g, &mut dst);
    }
}
