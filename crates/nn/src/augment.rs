//! Data augmentation for square detector images.
//!
//! Diffraction patterns have no canonical in-plane orientation (the beam
//! orientation is random), so horizontal/vertical flips and 90° rotations
//! are label-preserving symmetries — the natural augmentation family for
//! this use case.

use crate::tensor::Tensor4;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which symmetries to sample per image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Random horizontal flips.
    pub hflip: bool,
    /// Random vertical flips.
    pub vflip: bool,
    /// Random 0/90/180/270° rotations (square images only).
    pub rot90: bool,
}

impl AugmentConfig {
    /// All symmetries on (the dihedral group of the square).
    pub fn full() -> Self {
        AugmentConfig {
            hflip: true,
            vflip: true,
            rot90: true,
        }
    }

    /// No augmentation.
    pub fn none() -> Self {
        AugmentConfig {
            hflip: false,
            vflip: false,
            rot90: false,
        }
    }
}

/// Flip every channel of sample `n` horizontally, in place.
pub fn hflip_sample(batch: &mut Tensor4, n: usize) {
    let (_, c, h, w) = batch.shape();
    let s = batch.sample_mut(n);
    for ci in 0..c {
        for y in 0..h {
            let row = &mut s[(ci * h + y) * w..(ci * h + y + 1) * w];
            row.reverse();
        }
    }
}

/// Flip every channel of sample `n` vertically, in place.
pub fn vflip_sample(batch: &mut Tensor4, n: usize) {
    let (_, c, h, w) = batch.shape();
    let s = batch.sample_mut(n);
    for ci in 0..c {
        for y in 0..h / 2 {
            for x in 0..w {
                s.swap((ci * h + y) * w + x, (ci * h + (h - 1 - y)) * w + x);
            }
        }
    }
}

/// Rotate every channel of sample `n` by 90° clockwise (square images).
pub fn rot90_sample(batch: &mut Tensor4, n: usize) {
    let (_, c, h, w) = batch.shape();
    assert_eq!(h, w, "rot90 requires square images");
    let s = batch.sample_mut(n);
    let mut scratch = vec![0.0f32; h * w];
    for ci in 0..c {
        let plane = &mut s[ci * h * w..(ci + 1) * h * w];
        scratch.copy_from_slice(plane);
        for y in 0..h {
            for x in 0..w {
                // (y, x) ← (h−1−x, y)
                plane[y * w + x] = scratch[(h - 1 - x) * w + y];
            }
        }
    }
}

/// Apply random label-preserving symmetries to every sample of a batch.
pub fn augment_batch<R: Rng + ?Sized>(batch: &mut Tensor4, config: AugmentConfig, rng: &mut R) {
    let n = batch.n;
    for i in 0..n {
        if config.hflip && rng.gen_bool(0.5) {
            hflip_sample(batch, i);
        }
        if config.vflip && rng.gen_bool(0.5) {
            vflip_sample(batch, i);
        }
        if config.rot90 {
            for _ in 0..rng.gen_range(0..4u8) {
                rot90_sample(batch, i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn numbered(h: usize, w: usize) -> Tensor4 {
        Tensor4::from_vec(1, 1, h, w, (0..h * w).map(|i| i as f32).collect())
    }

    #[test]
    fn hflip_reverses_rows() {
        let mut t = numbered(2, 3);
        hflip_sample(&mut t, 0);
        assert_eq!(t.data(), &[2.0, 1.0, 0.0, 5.0, 4.0, 3.0]);
    }

    #[test]
    fn vflip_reverses_columns() {
        let mut t = numbered(2, 3);
        vflip_sample(&mut t, 0);
        assert_eq!(t.data(), &[3.0, 4.0, 5.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn double_flip_is_identity() {
        let mut t = numbered(4, 4);
        let original = t.clone();
        hflip_sample(&mut t, 0);
        hflip_sample(&mut t, 0);
        assert_eq!(t, original);
        vflip_sample(&mut t, 0);
        vflip_sample(&mut t, 0);
        assert_eq!(t, original);
    }

    #[test]
    fn rot90_once() {
        // [0 1; 2 3] rotated clockwise → [2 0; 3 1]
        let mut t = numbered(2, 2);
        rot90_sample(&mut t, 0);
        assert_eq!(t.data(), &[2.0, 0.0, 3.0, 1.0]);
    }

    #[test]
    fn four_rotations_are_identity() {
        let mut t = numbered(5, 5);
        let original = t.clone();
        for _ in 0..4 {
            rot90_sample(&mut t, 0);
        }
        assert_eq!(t, original);
    }

    #[test]
    fn augment_preserves_multiset_of_pixels() {
        let mut t = numbered(4, 4);
        let mut expected: Vec<f32> = t.data().to_vec();
        expected.sort_by(f32::total_cmp);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        augment_batch(&mut t, AugmentConfig::full(), &mut rng);
        let mut got: Vec<f32> = t.data().to_vec();
        got.sort_by(f32::total_cmp);
        assert_eq!(got, expected);
    }

    #[test]
    fn none_config_is_identity() {
        let mut t = numbered(4, 4);
        let original = t.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        augment_batch(&mut t, AugmentConfig::none(), &mut rng);
        assert_eq!(t, original);
    }

    #[test]
    fn per_sample_independence() {
        // With a batch of many samples, at least one should differ from
        // the original under full augmentation (overwhelmingly likely).
        let mut batch = Tensor4::zeros(8, 1, 4, 4);
        for i in 0..8 {
            for (j, v) in batch.sample_mut(i).iter_mut().enumerate() {
                *v = (i * 16 + j) as f32;
            }
        }
        let original = batch.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        augment_batch(&mut batch, AugmentConfig::full(), &mut rng);
        assert_ne!(batch, original);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rot90_rejects_non_square() {
        let mut t = numbered(2, 3);
        rot90_sample(&mut t, 0);
    }
}
