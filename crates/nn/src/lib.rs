//! # a4nn-nn — from-scratch CPU neural-network training substrate
//!
//! The A4NN paper trains its NAS candidates with PyTorch on GPUs. This
//! crate is the substitute substrate: a small, dependency-light,
//! deterministic CPU training library sufficient to instantiate and train
//! every architecture the NSGA-Net macro search space can express:
//!
//! - [`tensor`] — dense `f32` tensors in NCHW layout plus 2-D matrices,
//! - [`layers`] — Conv2d, BatchNorm2d, ReLU, MaxPool2d, global average
//!   pooling, and Dense, each with hand-derived backward passes and exact
//!   FLOPs accounting,
//! - [`graph`] — phase-DAG networks with sum joins and residual skips
//!   (the decoded NSGA-Net macro genome), built from a [`NetSpec`],
//! - [`loss`] — softmax cross-entropy,
//! - [`optim`] — SGD with momentum and weight decay,
//! - [`data`] — minibatch iteration over image datasets,
//! - [`serialize`] — model state (de)serialization so every epoch's weights
//!   can be checkpointed into the data commons, as §2.2.2 requires.
//!
//! Minibatch forward/backward is data-parallel over the batch dimension
//! via rayon. All randomness flows through caller-provided seeds.

pub mod augment;
pub mod cell;
pub mod data;
pub mod gemm;
pub mod graph;
pub mod im2col;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod pool_same;
pub mod schedule;
pub mod serialize;
pub mod tensor;

pub use augment::{augment_batch, AugmentConfig};
pub use cell::{CellNodeSpec, CellOp, CellSpec, MicroNetSpec, MicroNetwork};
pub use data::{BatchIter, Dataset};
pub use graph::{NetSpec, Network, PhaseNetSpec};
pub use layers::ConvImpl;
pub use loss::{cross_entropy, CrossEntropyOutput};
pub use optim::{Adam, Sgd};
pub use schedule::LrSchedule;
pub use serialize::ModelState;
pub use tensor::{Tensor2, Tensor4};

/// Train `net` for one epoch over `train` and return `(mean loss,
/// train accuracy %)`. Evaluation helpers live in [`graph::Network`].
pub fn train_epoch(
    net: &mut Network,
    opt: &mut Sgd,
    train: &Dataset,
    batch_size: usize,
    rng: &mut impl rand::Rng,
) -> (f32, f32) {
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    for (images, labels) in train.shuffled_batches(batch_size, rng) {
        let logits = net.forward(&images, true);
        let out = cross_entropy(&logits, &labels);
        total_loss += f64::from(out.loss) * labels.len() as f64;
        correct += out.correct;
        seen += labels.len();
        net.backward(&out.dlogits);
        opt.step(net);
    }
    let mean_loss = if seen == 0 {
        0.0
    } else {
        (total_loss / seen as f64) as f32
    };
    let acc = if seen == 0 {
        0.0
    } else {
        100.0 * correct as f32 / seen as f32
    };
    (mean_loss, acc)
}
