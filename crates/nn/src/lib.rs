//! # a4nn-nn — from-scratch CPU neural-network training substrate
//!
//! The A4NN paper trains its NAS candidates with PyTorch on GPUs. This
//! crate is the substitute substrate: a small, dependency-light,
//! deterministic CPU training library sufficient to instantiate and train
//! every architecture the NSGA-Net macro search space can express:
//!
//! - [`tensor`] — dense `f32` tensors in NCHW layout plus 2-D matrices,
//! - [`layers`] — Conv2d, BatchNorm2d, ReLU, MaxPool2d, global average
//!   pooling, and Dense, each with hand-derived backward passes and exact
//!   FLOPs accounting,
//! - [`graph`] — phase-DAG networks with sum joins and residual skips
//!   (the decoded NSGA-Net macro genome), built from a [`NetSpec`],
//! - [`loss`] — softmax cross-entropy,
//! - [`optim`] — SGD with momentum and weight decay,
//! - [`data`] — minibatch iteration over image datasets,
//! - [`serialize`] — model state (de)serialization so every epoch's weights
//!   can be checkpointed into the data commons, as §2.2.2 requires.
//!
//! Minibatch forward/backward is data-parallel over the batch dimension
//! via rayon. All randomness flows through caller-provided seeds.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod augment;
pub mod cell;
pub mod data;
pub mod gemm;
pub mod graph;
pub mod im2col;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod pool_same;
pub mod schedule;
pub mod serialize;
pub mod tensor;
pub mod workspace;

pub use augment::{augment_batch, AugmentConfig};
pub use cell::{CellNodeSpec, CellOp, CellSpec, MicroNetSpec, MicroNetwork};
pub use data::{BatchIter, Dataset};
pub use graph::{NetSpec, Network, PhaseNetSpec};
pub use layers::{ConvImpl, DenseImpl};
pub use loss::{cross_entropy, cross_entropy_ws, CrossEntropyOutput};
pub use optim::{Adam, Sgd};
pub use schedule::LrSchedule;
pub use serialize::ModelState;
pub use tensor::{Tensor2, Tensor4};
pub use workspace::Workspace;

/// Train `net` for one epoch over `train` and return `(mean loss,
/// train accuracy %)`. Convenience wrapper over [`train_epoch_ws`] with
/// a throwaway workspace; persistent callers (the trainers) hold their
/// own [`Workspace`] so steady-state epochs allocate nothing.
pub fn train_epoch(
    net: &mut Network,
    opt: &mut Sgd,
    train: &Dataset,
    batch_size: usize,
    rng: &mut impl rand::Rng,
) -> (f32, f32) {
    train_epoch_ws(net, opt, train, batch_size, rng, &mut Workspace::default())
}

/// [`train_epoch`] with all per-batch buffers — the gathered batch, every
/// activation and gradient, loss scratch — drawn from `ws`. After the
/// first batch warms the pool, the loop performs zero heap allocations
/// per batch (pinned by `tests/alloc_regression.rs`); results are bitwise
/// identical to the allocating path.
pub fn train_epoch_ws(
    net: &mut Network,
    opt: &mut Sgd,
    train: &Dataset,
    batch_size: usize,
    rng: &mut impl rand::Rng,
    ws: &mut Workspace,
) -> (f32, f32) {
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    // Size the gather buffer for a full batch up front so best-fit reuse
    // keeps serving it even after a smaller remainder batch.
    let mut images = {
        let (c, h, w) = (train.channels, train.height, train.width);
        ws.t4_scratch(batch_size.min(train.len().max(1)), c, h, w)
    };
    let mut labels = ws.take_labels();
    let mut iter = train.shuffled_batches(batch_size, rng);
    while iter.next_into(&mut images, &mut labels) {
        let logits = net.forward_ws(&images, true, ws);
        let out = cross_entropy_ws(&logits, &labels, ws);
        ws.give2(logits);
        total_loss += f64::from(out.loss) * labels.len() as f64;
        correct += out.correct;
        seen += labels.len();
        net.backward_ws(&out.dlogits, ws);
        ws.give2(out.dlogits);
        ws.give2(out.probs);
        opt.step(net);
    }
    ws.give4(images);
    ws.give_labels(labels);
    let mean_loss = if seen == 0 {
        0.0
    } else {
        (total_loss / seen as f64) as f32
    };
    let acc = if seen == 0 {
        0.0
    } else {
        100.0 * correct as f32 / seen as f32
    };
    (mean_loss, acc)
}
