//! Cache-blocked, register-tiled `f32` GEMM kernels for the conv hot path.
//!
//! Two variants cover everything the im2col-lowered convolution needs:
//!
//! - [`gemm_nn`] — `C += A·B` with both operands row-major (forward and
//!   the input-gradient lowering),
//! - [`gemm_nt`] — `C += A·Bᵀ` (the weight-gradient lowering, where both
//!   operands share the long output-pixel axis).
//!
//! The kernels are deterministic by construction: every output element is
//! accumulated in a fixed order that does not depend on blocking factors
//! landing mid-row or on how many threads run, so results are bitwise
//! reproducible across machines and thread budgets. Parallelism splits the
//! *rows* of `C` onto scoped threads — each element is still produced by
//! exactly one thread.
//!
//! The thread budget is a process-wide knob ([`set_thread_budget`]) sized
//! by the scheduler from its worker count, so intra-op threads and
//! inter-model workers share the machine instead of oversubscribing it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide intra-op thread budget; `0` means "auto" (all cores).
static THREAD_BUDGET: AtomicUsize = AtomicUsize::new(0);

/// Set the intra-op thread budget. `0` restores auto (all available
/// cores). The scheduler calls this with `cores / workers` so concurrent
/// model trainings don't oversubscribe the machine.
pub fn set_thread_budget(n: usize) {
    THREAD_BUDGET.store(n, Ordering::Relaxed);
}

/// The raw configured budget (`0` = auto).
pub fn thread_budget() -> usize {
    THREAD_BUDGET.load(Ordering::Relaxed)
}

/// Budget resolved against the host and the amount of splittable work:
/// at least 1, at most `work` and at most the configured budget.
pub fn resolved_threads(work: usize) -> usize {
    let budget = match thread_budget() {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    };
    budget.min(work).max(1)
}

/// Cached runtime AVX2 detection. The kernels are written as plain
/// scalar loops over fixed-size tiles, so the *same* Rust source is
/// compiled twice — once for the baseline target (SSE2 on x86-64) and
/// once under `#[target_feature(enable = "avx2")]` — and the fastest
/// available copy is picked per call. Both copies execute the identical
/// sequence of f32 additions and multiplications (vectorization packs
/// independent accumulator chains into wider lanes without reordering
/// any chain, and rustc never contracts `a*b + c` into a fused
/// multiply-add), so results are bitwise identical across ISAs.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// View an exactly-`N`-element slice as a fixed-size array reference so
/// the micro-kernels' bounds checks hoist out of the inner loops.
#[inline(always)]
fn as_chunk<const N: usize>(s: &[f32]) -> &[f32; N] {
    match s.try_into() {
        Ok(arr) => arr,
        Err(_) => unreachable!("callers slice exactly {N} elements, got {}", s.len()),
    }
}

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile (two AVX2 lanes worth of `f32`).
const NR: usize = 16;
/// K-panel depth: a `KC×NR` B panel stays resident in L1.
const KC: usize = 256;
/// Column block: a `KC×NC` B panel stays resident in L2.
const NC: usize = 1024;

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major. Splits the rows of `C`
/// across up to `threads` scoped threads (capped by the global budget).
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    assert_eq!(a.len(), m * k, "gemm_nn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_nn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nn: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let t = threads.min(resolved_threads(m));
    if t <= 1 {
        gemm_nn_serial(m, n, k, a, b, c);
        return;
    }
    // Contiguous row blocks: thread i owns rows [i·rows_per, …) of C and
    // the matching rows of A. Accumulation order per element is identical
    // to the serial kernel, so the split is invisible in the output.
    let rows_per = m.div_ceil(t);
    std::thread::scope(|s| {
        for (ti, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let mh = c_chunk.len() / n;
            let a_chunk = &a[ti * rows_per * k..ti * rows_per * k + mh * k];
            s.spawn(move || gemm_nn_serial(mh, n, k, a_chunk, b, c_chunk));
        }
    });
}

/// Single-threaded blocked `C += A·B`: dispatches to the widest ISA the
/// host supports (see [`avx2_available`] for why this is bitwise-safe).
fn gemm_nn_serial(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was verified at runtime above.
        unsafe { gemm_nn_serial_avx2(m, n, k, a, b, c) };
        return;
    }
    gemm_nn_serial_generic(m, n, k, a, b, c)
}

/// The generic kernel body recompiled with AVX2 codegen enabled; the
/// `#[inline(always)]` bodies inline here and re-vectorize 8-wide.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_serial_avx2(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nn_serial_generic(m, n, k, a, b, c)
}

#[inline(always)]
fn gemm_nn_serial_generic(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut jb = 0;
    while jb < n {
        let jw = NC.min(n - jb);
        let mut pb = 0;
        while pb < k {
            let pw = KC.min(k - pb);
            let mut ib = 0;
            while ib < m {
                let mh = MR.min(m - ib);
                micro_panel_nn(ib, mh, jb, jw, pb, pw, n, k, a, b, c);
                ib += mh;
            }
            pb += pw;
        }
        jb += jw;
    }
}

/// Register-tiled inner panel: an `mh×jw` tile of C gains the `pw`-deep
/// partial product, walked in `NR`-wide column strips with fixed-size
/// accumulators the compiler keeps in vector registers.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // hot-loop tile coordinates; a struct would obscure the blocking
fn micro_panel_nn(
    ib: usize,
    mh: usize,
    jb: usize,
    jw: usize,
    pb: usize,
    pw: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let jend = jb + jw;
    let mut j = jb;
    while j < jend {
        let u = NR.min(jend - j);
        if u == NR && mh == MR {
            // Fast path: full MR×NR tile with array-typed slices so the
            // bounds checks hoist and the inner loops vectorize.
            let mut acc = [[0.0f32; NR]; MR];
            let mut ar = [0.0f32; MR];
            for p in pb..pb + pw {
                let brow: &[f32; NR] = as_chunk(&b[p * n + j..p * n + j + NR]);
                for (r, v) in ar.iter_mut().enumerate() {
                    *v = a[(ib + r) * k + p];
                }
                for r in 0..MR {
                    let arp = ar[r];
                    for jj in 0..NR {
                        acc[r][jj] += arp * brow[jj];
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let crow = &mut c[(ib + r) * n + j..(ib + r) * n + j + NR];
                for jj in 0..NR {
                    crow[jj] += accr[jj];
                }
            }
        } else {
            // Remainder path: ragged tile edges, same accumulation order.
            let mut acc = [[0.0f32; NR]; MR];
            for p in pb..pb + pw {
                let brow = &b[p * n + j..p * n + j + u];
                for r in 0..mh {
                    let arp = a[(ib + r) * k + p];
                    for jj in 0..u {
                        acc[r][jj] += arp * brow[jj];
                    }
                }
            }
            for r in 0..mh {
                let crow = &mut c[(ib + r) * n + j..(ib + r) * n + j + u];
                for jj in 0..u {
                    crow[jj] += acc[r][jj];
                }
            }
        }
        j += u;
    }
}

/// `C[m×n] ⟵ seq(C, A·B)`: like [`gemm_nn`] but every output element is
/// accumulated *onto its existing value* in strict ascending-`k` order —
/// `c = (((c + a₀b₀) + a₁b₁) + …)` — instead of summing a zero-seeded
/// register tile into `C` afterwards.
///
/// This reproduces, bit for bit, the rounding of a naive sequential dot
/// product seeded from `C` (the order `Dense`'s reference loops use), while
/// still vectorizing: the serial dependency is per *element*, but the
/// `MR×NR` register tile advances all its elements' chains in lockstep, so
/// the adds run 16-wide across independent outputs. Thread parallelism
/// splits the rows of `C` exactly like [`gemm_nn`], so results are
/// identical for any thread budget.
pub fn gemm_nn_seq(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "gemm_nn_seq: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_nn_seq: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nn_seq: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let t = threads.min(resolved_threads(m));
    if t <= 1 {
        gemm_nn_seq_serial(m, n, k, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(t);
    std::thread::scope(|s| {
        for (ti, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let mh = c_chunk.len() / n;
            let a_chunk = &a[ti * rows_per * k..ti * rows_per * k + mh * k];
            s.spawn(move || gemm_nn_seq_serial(mh, n, k, a_chunk, b, c_chunk));
        }
    });
}

/// Single-threaded blocked sequential-accumulation GEMM. Identical
/// blocking to [`gemm_nn_serial`]; only the tile epilogue differs (the
/// accumulator is *loaded from* and *stored to* `C`, so chaining the `KC`
/// panels extends one strict sequential sum per element). ISA dispatch
/// mirrors [`gemm_nn_serial`] and is bitwise-invisible for the same
/// reason.
fn gemm_nn_seq_serial(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was verified at runtime above.
        unsafe { gemm_nn_seq_serial_avx2(m, n, k, a, b, c) };
        return;
    }
    gemm_nn_seq_serial_generic(m, n, k, a, b, c)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_seq_serial_avx2(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm_nn_seq_serial_generic(m, n, k, a, b, c)
}

#[inline(always)]
fn gemm_nn_seq_serial_generic(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut jb = 0;
    while jb < n {
        let jw = NC.min(n - jb);
        let mut pb = 0;
        while pb < k {
            let pw = KC.min(k - pb);
            let mut ib = 0;
            while ib < m {
                let mh = MR.min(m - ib);
                micro_panel_nn_seq(ib, mh, jb, jw, pb, pw, n, k, a, b, c);
                ib += mh;
            }
            pb += pw;
        }
        jb += jw;
    }
}

/// Sequential-accumulation twin of [`micro_panel_nn`]: the register tile
/// starts from the current `C` values and is written back verbatim, so the
/// per-element FP order is `c ⊕ a·b` over ascending `p` with no separate
/// tile-sum rounding step.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // hot-loop tile coordinates; a struct would obscure the blocking
fn micro_panel_nn_seq(
    ib: usize,
    mh: usize,
    jb: usize,
    jw: usize,
    pb: usize,
    pw: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let jend = jb + jw;
    let mut j = jb;
    while j < jend {
        let u = NR.min(jend - j);
        if u == NR && mh == MR {
            let mut acc = [[0.0f32; NR]; MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                let crow: &[f32; NR] = as_chunk(&c[(ib + r) * n + j..(ib + r) * n + j + NR]);
                *accr = *crow;
            }
            let mut ar = [0.0f32; MR];
            for p in pb..pb + pw {
                let brow: &[f32; NR] = as_chunk(&b[p * n + j..p * n + j + NR]);
                for (r, v) in ar.iter_mut().enumerate() {
                    *v = a[(ib + r) * k + p];
                }
                for r in 0..MR {
                    let arp = ar[r];
                    for jj in 0..NR {
                        acc[r][jj] += arp * brow[jj];
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                c[(ib + r) * n + j..(ib + r) * n + j + NR].copy_from_slice(accr);
            }
        } else {
            let mut acc = [[0.0f32; NR]; MR];
            for r in 0..mh {
                let crow = &c[(ib + r) * n + j..(ib + r) * n + j + u];
                acc[r][..u].copy_from_slice(crow);
            }
            for p in pb..pb + pw {
                let brow = &b[p * n + j..p * n + j + u];
                for r in 0..mh {
                    let arp = a[(ib + r) * k + p];
                    for jj in 0..u {
                        acc[r][jj] += arp * brow[jj];
                    }
                }
            }
            for r in 0..mh {
                c[(ib + r) * n + j..(ib + r) * n + j + u].copy_from_slice(&acc[r][..u]);
            }
        }
        j += u;
    }
}

/// `C[m×n] += A[m×k] · Bᵀ` where `B` is `n×k` row-major: every output is
/// a dot product of an A row with a B row. Used for the weight gradient,
/// where the shared axis (output pixels) is long and both operands are
/// row-major along it.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let t = threads.min(resolved_threads(m));
    if t <= 1 {
        gemm_nt_serial(m, n, k, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(t);
    std::thread::scope(|s| {
        for (ti, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let mh = c_chunk.len() / n;
            let a_chunk = &a[ti * rows_per * k..ti * rows_per * k + mh * k];
            s.spawn(move || gemm_nt_serial(mh, n, k, a_chunk, b, c_chunk));
        }
    });
}

fn gemm_nt_serial(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was verified at runtime above.
        unsafe { gemm_nt_serial_avx2(m, n, k, a, b, c) };
        return;
    }
    gemm_nt_serial_generic(m, n, k, a, b, c)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_serial_avx2(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_serial_generic(m, n, k, a, b, c)
}

#[inline(always)]
fn gemm_nt_serial_generic(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv += dot_lanes(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Eight-lane strided dot product: vectorizes despite strict FP ordering
/// because the lane structure is fixed, and stays deterministic because it
/// never depends on thread count or slice alignment.
#[inline(always)]
fn dot_lanes(x: &[f32], y: &[f32]) -> f32 {
    const L: usize = 8;
    let mut lanes = [0.0f32; L];
    let chunks = x.len() / L;
    for ci in 0..chunks {
        let xs: &[f32; L] = as_chunk(&x[ci * L..ci * L + L]);
        let ys: &[f32; L] = as_chunk(&y[ci * L..ci * L + L]);
        for l in 0..L {
            lanes[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * L..x.len() {
        tail += x[i] * y[i];
    }
    let even = (lanes[0] + lanes[4]) + (lanes[2] + lanes[6]);
    let odd = (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]);
    (even + odd) + tail
}

/// Row-major transpose: `dst[k×m] = src[m×k]ᵀ`.
///
/// Cache-blocked: walking the full matrix in row order makes every write
/// land a whole row-stride apart (a different cache line and, for large
/// matrices, a different page), so the naive loop is bound by cache-line
/// fills rather than bandwidth. Processing `TB×TB` tiles keeps both the
/// reads and the writes inside a small resident set. Pure data movement —
/// element values are untouched, so this is bitwise-neutral by
/// construction.
pub fn transpose(m: usize, k: usize, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), m * k, "transpose: src shape mismatch");
    assert_eq!(dst.len(), m * k, "transpose: dst shape mismatch");
    const TB: usize = 32;
    let mut ib = 0;
    while ib < m {
        let ih = TB.min(m - ib);
        let mut pb = 0;
        while pb < k {
            let pw = TB.min(k - pb);
            for i in ib..ib + ih {
                for p in pb..pb + pw {
                    dst[p * m + i] = src[i * k + p];
                }
            }
            pb += pw;
        }
        ib += ih;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
                }
            }
        }
        c.into_iter().map(|v| v as f32).collect()
    }

    fn pseudo(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn gemm_nn_matches_reference_on_awkward_shapes() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (4, 16, 8), (5, 17, 9), (13, 33, 70)] {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut c = vec![0.0f32; m * n];
            gemm_nn(m, n, k, &a, &b, &mut c, 1);
            let want = reference_nn(m, n, k, &a, &b);
            for (got, want) in c.iter().zip(&want) {
                assert!(
                    (got - want).abs() < 1e-4,
                    "{got} vs {want} at ({m},{n},{k})"
                );
            }
        }
    }

    #[test]
    fn gemm_nt_matches_reference() {
        let (m, n, k) = (5, 7, 67);
        let a = pseudo(m * k, 3);
        let bt = pseudo(n * k, 4);
        // Reference computes A·B with B = Bᵀ-of-bt materialized.
        let mut b = vec![0.0f32; k * n];
        transpose(n, k, &bt, &mut b);
        let want = reference_nn(m, n, k, &a, &b);
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut c, 1);
        for (got, want) in c.iter().zip(&want) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn parallel_split_is_bitwise_identical_to_serial() {
        let (m, n, k) = (37, 129, 65);
        let a = pseudo(m * k, 5);
        let b = pseudo(k * n, 6);
        let mut serial = vec![0.0f32; m * n];
        gemm_nn_serial(m, n, k, &a, &b, &mut serial);
        for threads in [2, 3, 4, 8] {
            let mut par = vec![0.0f32; m * n];
            gemm_nn(m, n, k, &a, &b, &mut par, threads);
            assert_eq!(serial, par, "thread count {threads} changed the result");
        }
        let bt = {
            let mut t = vec![0.0f32; k * n];
            transpose(k, n, &b, &mut t);
            t
        };
        let mut nt_serial = vec![0.0f32; m * n];
        gemm_nt_serial(m, n, k, &a, &bt, &mut nt_serial);
        for threads in [2, 5] {
            let mut par = vec![0.0f32; m * n];
            gemm_nt(m, n, k, &a, &bt, &mut par, threads);
            assert_eq!(nt_serial, par);
        }
    }

    #[test]
    fn gemm_accumulates_into_existing_c() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [10.0f32];
        gemm_nn(1, 1, 2, &a, &b, &mut c, 1);
        assert_eq!(c[0], 10.0 + 3.0 + 8.0);
    }

    /// Strict per-element sequential reference: `c = ((c + a₀b₀) + a₁b₁)…`
    /// in `f32`, ascending `p` — the order the naive `Dense` loops use.
    fn reference_seq(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    #[test]
    fn gemm_nn_seq_is_bitwise_sequential() {
        // Shapes straddle every blocking boundary: k over KC (multi-panel
        // chaining), n over NR, ragged edges everywhere.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 8),
            (5, 17, 300),
            (13, 33, 513),
            (2, 16, 257),
        ] {
            let a = pseudo(m * k, 11);
            let b = pseudo(k * n, 12);
            let seed = pseudo(m * n, 13);
            let mut want = seed.clone();
            reference_seq(m, n, k, &a, &b, &mut want);
            let mut got = seed.clone();
            gemm_nn_seq(m, n, k, &a, &b, &mut got, 1);
            let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                wb, gb,
                "seq gemm diverged from sequential order at ({m},{n},{k})"
            );
        }
    }

    #[test]
    fn gemm_nn_seq_thread_count_invariant() {
        let (m, n, k) = (37, 29, 301);
        let a = pseudo(m * k, 14);
        let b = pseudo(k * n, 15);
        let seed = pseudo(m * n, 16);
        let mut serial = seed.clone();
        gemm_nn_seq_serial(m, n, k, &a, &b, &mut serial);
        for threads in [2, 3, 4, 8] {
            let mut par = seed.clone();
            gemm_nn_seq(m, n, k, &a, &b, &mut par, threads);
            assert_eq!(serial, par, "thread count {threads} changed the result");
        }
    }

    /// On AVX2 hosts the dispatchers take the wide path; it must be
    /// bitwise indistinguishable from the baseline-ISA compilation of
    /// the same source. (On non-AVX2 hosts both sides are the generic
    /// kernel and the test is trivially true.)
    #[test]
    fn isa_dispatch_is_bitwise_invisible() {
        let (m, n, k) = (13, 37, 301);
        let a = pseudo(m * k, 21);
        let b = pseudo(k * n, 22);
        let seed = pseudo(m * n, 23);

        let mut dispatched = seed.clone();
        gemm_nn_serial(m, n, k, &a, &b, &mut dispatched);
        let mut generic = seed.clone();
        gemm_nn_serial_generic(m, n, k, &a, &b, &mut generic);
        assert_eq!(dispatched, generic, "gemm_nn ISA paths diverged");

        let mut dispatched = seed.clone();
        gemm_nn_seq_serial(m, n, k, &a, &b, &mut dispatched);
        let mut generic = seed;
        gemm_nn_seq_serial_generic(m, n, k, &a, &b, &mut generic);
        assert_eq!(dispatched, generic, "gemm_nn_seq ISA paths diverged");

        let bt = {
            let mut t = vec![0.0f32; k * n];
            transpose(k, n, &b, &mut t);
            t
        };
        let mut dispatched = vec![0.0f32; m * n];
        gemm_nt_serial(m, n, k, &a, &bt, &mut dispatched);
        let mut generic = vec![0.0f32; m * n];
        gemm_nt_serial_generic(m, n, k, &a, &bt, &mut generic);
        assert_eq!(dispatched, generic, "gemm_nt ISA paths diverged");
    }

    #[test]
    fn thread_budget_round_trips() {
        let prev = thread_budget();
        set_thread_budget(3);
        assert_eq!(thread_budget(), 3);
        assert_eq!(resolved_threads(100), 3);
        assert_eq!(resolved_threads(2), 2);
        set_thread_budget(0);
        assert!(resolved_threads(1) == 1);
        set_thread_budget(prev);
    }

    #[test]
    fn transpose_round_trips() {
        let src = pseudo(6, 9);
        let mut t = vec![0.0f32; 6];
        transpose(2, 3, &src, &mut t);
        let mut back = vec![0.0f32; 6];
        transpose(3, 2, &t, &mut back);
        assert_eq!(src, back);
    }
}
