//! Reusable scratch arena for the training hot path.
//!
//! Every minibatch of the pre-workspace trainer allocated the same set of
//! buffers — batch gather tensor, per-layer activations and gradients,
//! im2col panels, input caches — and freed them again a few microseconds
//! later. A [`Workspace`] turns that churn into pointer swaps: finished
//! tensors hand their backing `Vec<f32>` back to a free list, and the next
//! request of a compatible size takes it over. After the first batch warms
//! the pool, steady-state training performs no heap allocation at all
//! (pinned by the allocation-regression test in
//! `crates/nn/tests/alloc_regression.rs`).
//!
//! # Ownership rules
//!
//! - A buffer is owned by exactly one live tensor *or* the pool, never
//!   both; `take_*` transfers pool → caller, [`give`](Workspace::give) /
//!   [`give4`](Workspace::give4) / [`give2`](Workspace::give2) transfer it
//!   back. Dropping a tensor instead of giving it back is always safe —
//!   the pool just re-allocates later (warmup, not a leak).
//! - The pool never shrinks on its own: once the largest shape of a
//!   training step has passed through, every later request is served
//!   without touching the allocator. Long-running owners with *varied*
//!   request shapes (the inference server) call
//!   [`trim_to`](Workspace::trim_to) at quiet points to bound the parked
//!   bytes; [`pooled_bytes`](Workspace::pooled_bytes) /
//!   [`peak_pooled_bytes`](Workspace::peak_pooled_bytes) make the
//!   high-water mark observable for metrics export.
//! - A `Workspace` is single-threaded by design (`&mut` everywhere).
//!   Parallel code hands plain slices to scoped threads and never shares
//!   the pool across them.
//!
//! # Why determinism survives buffer reuse
//!
//! Reused buffers can carry stale values, so every `take_*` variant states
//! its contract: [`take_zeroed`](Workspace::take_zeroed) (and the zeroed
//! tensor wrappers) clear the buffer for accumulation targets, while
//! [`take_scratch`](Workspace::take_scratch) leaves contents arbitrary and
//! is only used where the consumer provably writes every element before
//! reading it (im2col panels, full-overwrite layer outputs). The FP
//! arithmetic itself never changes — same kernels, same operand order —
//! so outputs are bitwise identical to the allocating path.

use crate::tensor::{Tensor2, Tensor4};

/// A best-fit free-list pool of `f32` (and label) buffers.
///
/// See the [module docs](self) for the ownership and determinism rules.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Free `f32` buffers; `len` is kept at whatever the last owner used,
    /// capacity is what matters for reuse.
    bufs: Vec<Vec<f32>>,
    /// Free label buffers for batch gathering.
    label_bufs: Vec<Vec<usize>>,
    /// Total number of `f32` buffers ever allocated through this pool
    /// (diagnostic: stops growing once the pool is warm).
    allocations: usize,
    /// Bytes currently parked in the pool (both buffer kinds), maintained
    /// incrementally so the hot path never rescans the free lists.
    pooled_bytes: usize,
    /// High-water mark of `pooled_bytes` over the pool's lifetime;
    /// unaffected by [`trim_to`](Workspace::trim_to).
    peak_pooled_bytes: usize,
}

impl Clone for Workspace {
    /// Cloning a workspace yields a fresh, empty pool: scratch contents
    /// are never part of logical state, and sharing capacity between
    /// clones would alias buffers.
    fn clone(&self) -> Self {
        Workspace::default()
    }
}

impl Workspace {
    /// New empty pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of buffer allocations this pool has performed. Constant at
    /// steady state; the allocation-regression test asserts it.
    #[inline]
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Number of buffers currently parked in the pool.
    #[inline]
    pub fn free_buffers(&self) -> usize {
        self.bufs.len()
    }

    /// Bytes currently parked in the pool across both buffer kinds.
    /// Buffers checked out to live tensors are *not* counted — this is
    /// idle capacity, the quantity [`trim_to`](Workspace::trim_to) bounds.
    #[inline]
    pub fn pooled_bytes(&self) -> usize {
        self.pooled_bytes
    }

    /// Lifetime high-water mark of [`pooled_bytes`](Workspace::pooled_bytes).
    /// Trimming does not reset it, so a metrics exporter sees the true
    /// peak even when the pool is kept bounded.
    #[inline]
    pub fn peak_pooled_bytes(&self) -> usize {
        self.peak_pooled_bytes
    }

    /// Drop parked buffers, smallest first, until at most `max_bytes`
    /// remain pooled; returns the bytes released. Smallest-first keeps the
    /// large warm buffers that best-fit can truncate down to any future
    /// request, so a trim costs re-warming only the low end of the size
    /// distribution. Checked-out buffers are untouched.
    pub fn trim_to(&mut self, max_bytes: usize) -> usize {
        let before = self.pooled_bytes;
        while self.pooled_bytes > max_bytes {
            let smallest_f32 = self
                .bufs
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, b)| (i, b.capacity() * std::mem::size_of::<f32>()));
            let smallest_label = self
                .label_bufs
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, b)| (i, b.capacity() * std::mem::size_of::<usize>()));
            match (smallest_f32, smallest_label) {
                (Some((fi, fb)), Some((_, lb))) if fb <= lb => {
                    self.bufs.swap_remove(fi);
                    self.pooled_bytes -= fb;
                }
                (_, Some((li, lb))) => {
                    self.label_bufs.swap_remove(li);
                    self.pooled_bytes -= lb;
                }
                (Some((fi, fb)), None) => {
                    self.bufs.swap_remove(fi);
                    self.pooled_bytes -= fb;
                }
                (None, None) => break,
            }
        }
        before - self.pooled_bytes
    }

    /// Take a buffer of exactly `len` elements with **arbitrary contents**
    /// (stale values from a previous owner). Only for consumers that write
    /// every element before reading it.
    pub fn take_scratch(&mut self, len: usize) -> Vec<f32> {
        match self.best_fit(len) {
            Some(mut v) => {
                if v.len() > len {
                    v.truncate(len);
                } else {
                    v.resize(len, 0.0);
                }
                v
            }
            None => {
                self.allocations += 1;
                vec![0.0; len]
            }
        }
    }

    /// Take a zero-filled buffer of `len` elements (for accumulation
    /// targets).
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.take_scratch(len);
        v.fill(0.0);
        v
    }

    /// Take a buffer initialized as a copy of `src`.
    pub fn take_copy(&mut self, src: &[f32]) -> Vec<f32> {
        let mut v = self.take_scratch(src.len());
        v.copy_from_slice(src);
        v
    }

    /// Return a buffer to the pool. Zero-capacity buffers are dropped —
    /// they are placeholder `Vec`s, not real storage.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pooled_bytes += buf.capacity() * std::mem::size_of::<f32>();
            self.peak_pooled_bytes = self.peak_pooled_bytes.max(self.pooled_bytes);
            self.bufs.push(buf);
        }
    }

    /// Best-fit lookup: the smallest pooled buffer whose capacity covers
    /// `len`. Linear scan — the pool holds a few dozen buffers at most.
    fn best_fit(&mut self, len: usize) -> Option<Vec<f32>> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, cap)| {
            self.pooled_bytes -= cap * std::mem::size_of::<f32>();
            self.bufs.swap_remove(i)
        })
    }

    // --- Tensor wrappers ---------------------------------------------------

    /// Take a 4-D tensor with arbitrary contents (full-overwrite outputs).
    #[inline]
    pub fn t4_scratch(&mut self, n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
        Tensor4::from_vec(n, c, h, w, self.take_scratch(n * c * h * w))
    }

    /// Take a zero-filled 4-D tensor (accumulation targets).
    #[inline]
    pub fn t4_zeroed(&mut self, n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
        Tensor4::from_vec(n, c, h, w, self.take_zeroed(n * c * h * w))
    }

    /// Take a 4-D tensor copying `src` (input caches).
    #[inline]
    pub fn t4_copy(&mut self, src: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = src.shape();
        Tensor4::from_vec(n, c, h, w, self.take_copy(src.data()))
    }

    /// Return a 4-D tensor's storage to the pool.
    #[inline]
    pub fn give4(&mut self, t: Tensor4) {
        self.give(t.into_data());
    }

    /// Take a 2-D matrix with arbitrary contents (full-overwrite outputs).
    #[inline]
    pub fn t2_scratch(&mut self, rows: usize, cols: usize) -> Tensor2 {
        Tensor2::from_vec(rows, cols, self.take_scratch(rows * cols))
    }

    /// Take a zero-filled 2-D matrix (accumulation targets).
    #[inline]
    pub fn t2_zeroed(&mut self, rows: usize, cols: usize) -> Tensor2 {
        Tensor2::from_vec(rows, cols, self.take_zeroed(rows * cols))
    }

    /// Take a 2-D matrix copying `src` (input caches).
    #[inline]
    pub fn t2_copy(&mut self, src: &Tensor2) -> Tensor2 {
        Tensor2::from_vec(src.rows, src.cols, self.take_copy(src.data()))
    }

    /// Return a matrix's storage to the pool.
    #[inline]
    pub fn give2(&mut self, t: Tensor2) {
        self.give(t.into_data());
    }

    // --- Label buffers -----------------------------------------------------

    /// Take a cleared label buffer (contents empty, capacity reused).
    pub fn take_labels(&mut self) -> Vec<usize> {
        let mut v = self.label_bufs.pop().unwrap_or_default();
        self.pooled_bytes -= v.capacity() * std::mem::size_of::<usize>();
        v.clear();
        v
    }

    /// Return a label buffer to the pool.
    pub fn give_labels(&mut self, buf: Vec<usize>) {
        if buf.capacity() > 0 {
            self.pooled_bytes += buf.capacity() * std::mem::size_of::<usize>();
            self.peak_pooled_bytes = self.peak_pooled_bytes.max(self.pooled_bytes);
            self.label_bufs.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_storage() {
        let mut ws = Workspace::new();
        let a = ws.take_zeroed(64);
        let ptr = a.as_ptr();
        ws.give(a);
        let b = ws.take_zeroed(64);
        assert_eq!(b.as_ptr(), ptr, "same buffer must come back");
        assert_eq!(ws.allocations(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let small = ws.take_zeroed(16);
        let big = ws.take_zeroed(1024);
        let (sp, bp) = (small.as_ptr(), big.as_ptr());
        ws.give(big);
        ws.give(small);
        let got = ws.take_zeroed(10);
        assert_eq!(got.as_ptr(), sp, "16-cap buffer fits 10 better than 1024");
        let got_big = ws.take_zeroed(1000);
        assert_eq!(got_big.as_ptr(), bp);
    }

    #[test]
    fn zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take_zeroed(8);
        a.fill(7.0);
        ws.give(a);
        let b = ws.take_zeroed(4);
        assert!(b.iter().all(|&v| v == 0.0));
        let c = ws.take_copy(&[1.0, 2.0]);
        assert_eq!(c, vec![1.0, 2.0]);
    }

    #[test]
    fn tensor_round_trip_preserves_shape_discipline() {
        let mut ws = Workspace::new();
        let t = ws.t4_zeroed(2, 3, 4, 5);
        assert_eq!(t.shape(), (2, 3, 4, 5));
        ws.give4(t);
        let m = ws.t2_copy(&Tensor2::from_vec(1, 2, vec![3.0, 4.0]));
        assert_eq!(m.row(0), &[3.0, 4.0]);
        ws.give2(m);
        // The matrix reused the (truncated) 4-D buffer, so only one
        // buffer is parked.
        assert_eq!(ws.free_buffers(), 1);
        assert_eq!(ws.allocations(), 1);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let mut ws = Workspace::new();
        // Warm up with the exact sizes of the "step".
        for _ in 0..3 {
            let a = ws.take_zeroed(100);
            let b = ws.take_scratch(40);
            let c = ws.t4_zeroed(1, 2, 3, 4);
            ws.give(a);
            ws.give(b);
            ws.give4(c);
        }
        // Three live buffers in flight at once → three allocations on the
        // first pass, none afterwards.
        assert_eq!(ws.allocations(), 3, "warm pool must stop allocating");
    }

    #[test]
    fn empty_placeholders_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.give(Vec::new());
        assert_eq!(ws.free_buffers(), 0);
    }

    #[test]
    fn label_buffers_recycle() {
        let mut ws = Workspace::new();
        let mut l = ws.take_labels();
        l.extend_from_slice(&[1, 2, 3]);
        let cap = l.capacity();
        ws.give_labels(l);
        let l2 = ws.take_labels();
        assert!(l2.is_empty());
        assert_eq!(l2.capacity(), cap);
    }

    #[test]
    fn pooled_bytes_tracks_parked_capacity_and_peak() {
        let mut ws = Workspace::new();
        assert_eq!(ws.pooled_bytes(), 0);
        let a = ws.take_zeroed(100); // 400 bytes
        let b = ws.take_zeroed(50); // 200 bytes
        ws.give(a);
        assert_eq!(ws.pooled_bytes(), 400);
        ws.give(b);
        assert_eq!(ws.pooled_bytes(), 600);
        assert_eq!(ws.peak_pooled_bytes(), 600);

        // Checking a buffer back out reduces pooled, not peak.
        let c = ws.take_scratch(60); // takes the 100-cap buffer (best fit)
        assert_eq!(ws.pooled_bytes(), 200);
        assert_eq!(ws.peak_pooled_bytes(), 600);
        ws.give(c);

        // Label buffers count at usize width.
        let mut l = ws.take_labels();
        l.reserve_exact(8);
        let lbytes = l.capacity() * std::mem::size_of::<usize>();
        ws.give_labels(l);
        assert_eq!(ws.pooled_bytes(), 600 + lbytes);
        let _ = ws.take_labels();
        assert_eq!(ws.pooled_bytes(), 600);
    }

    #[test]
    fn trim_drops_smallest_first_and_preserves_peak() {
        let mut ws = Workspace::new();
        let small = ws.take_zeroed(25); // 100 bytes
        let mid = ws.take_zeroed(100); // 400 bytes
        let big = ws.take_zeroed(250); // 1000 bytes
        let big_ptr = big.as_ptr();
        ws.give(small);
        ws.give(mid);
        ws.give(big);
        assert_eq!(ws.pooled_bytes(), 1500);

        // Trimming to 1400 must shed the 100-byte buffer only.
        assert_eq!(ws.trim_to(1400), 100);
        assert_eq!(ws.pooled_bytes(), 1400);
        // Then to 1000: the 400-byte buffer goes, the big one survives.
        assert_eq!(ws.trim_to(1000), 400);
        assert_eq!(ws.free_buffers(), 1);
        let survivor = ws.take_scratch(250);
        assert_eq!(survivor.as_ptr(), big_ptr, "largest buffer must survive");
        ws.give(survivor);

        // Peak is a lifetime high-water mark, untouched by trims.
        assert_eq!(ws.peak_pooled_bytes(), 1500);
        // Trim to zero empties the pool; further trims are no-ops.
        assert_eq!(ws.trim_to(0), 1000);
        assert_eq!(ws.pooled_bytes(), 0);
        assert_eq!(ws.trim_to(0), 0);
    }

    #[test]
    fn steady_state_with_trim_stays_bounded_and_allocation_free() {
        // The serving pattern: a fixed working set of shapes, a trim after
        // every "batch". Once warm, allocations stop AND the pool never
        // exceeds the cap.
        let mut ws = Workspace::new();
        let cap = 8 * 1024;
        let mut warm_allocs = 0;
        for round in 0..10 {
            let x = ws.t4_scratch(4, 1, 8, 8);
            let y = ws.t2_scratch(4, 3);
            ws.give4(x);
            ws.give2(y);
            ws.trim_to(cap);
            assert!(ws.pooled_bytes() <= cap, "round {round} exceeded cap");
            if round == 0 {
                warm_allocs = ws.allocations();
            }
        }
        assert_eq!(
            ws.allocations(),
            warm_allocs,
            "trim above the working set must not force re-allocation"
        );
    }

    #[test]
    fn clone_is_fresh_and_empty() {
        let mut ws = Workspace::new();
        let a = ws.take_zeroed(8);
        ws.give(a);
        let c = ws.clone();
        assert_eq!(c.free_buffers(), 0);
        assert_eq!(c.allocations(), 0);
    }
}
