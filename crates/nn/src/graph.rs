//! Phase-DAG networks: the trainable realization of a decoded NSGA-Net
//! macro genome.
//!
//! A [`Network`] is a chain of phases; each phase is a stem conv block
//! followed by a DAG of conv blocks with sum joins, an optional residual
//! skip from the stem to the phase output, and a 2×2 max pool. The network
//! ends with global average pooling and a dense classifier.
//!
//! The crate stays decoupled from `a4nn-genome` by accepting a neutral
//! [`NetSpec`]; the workflow crate converts decoded genomes into specs.

use crate::layers::{
    BatchNorm2d, Conv2d, ConvImpl, Dense, DenseImpl, GlobalAvgPool, MaxPool2d, ParamVisitor, Relu,
};
use crate::tensor::{Tensor2, Tensor4};
use crate::workspace::Workspace;
use crate::{data::Dataset, gemm};
use a4nn_error::A4nnError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Default evaluation chunk size: bounds peak activation memory on large
/// validation sets while keeping per-chunk overhead negligible.
pub const DEFAULT_EVAL_CHUNK: usize = 256;

/// An empty placeholder tensor (capacity 0, no allocation) used to move
/// buffers out of slots that must keep a value.
fn empty_t4() -> Tensor4 {
    Tensor4::from_vec(0, 0, 0, 0, Vec::new())
}

/// Specification of one phase. Node indices refer to positions in
/// `node_inputs`; an empty input list means the node reads the stem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseNetSpec {
    /// Phase width (stem and node output channels).
    pub out_channels: usize,
    /// Conv kernel side.
    pub kernel: usize,
    /// Per-node input lists; `node_inputs[i]` only references `j < i`.
    pub node_inputs: Vec<Vec<usize>>,
    /// Nodes whose outputs are summed into the phase output. Must be
    /// non-empty when `node_inputs` is non-empty.
    pub leaves: Vec<usize>,
    /// Residual connection from the stem output to the phase output.
    pub skip: bool,
}

impl PhaseNetSpec {
    /// A degenerate phase: stem plus a single default conv block.
    pub fn degenerate(out_channels: usize, kernel: usize) -> Self {
        PhaseNetSpec {
            out_channels,
            kernel,
            node_inputs: vec![vec![]],
            leaves: vec![0],
            skip: false,
        }
    }

    fn validate(&self) {
        assert!(
            !self.node_inputs.is_empty(),
            "phase needs at least one node"
        );
        assert!(!self.leaves.is_empty(), "phase needs at least one leaf");
        for (i, ins) in self.node_inputs.iter().enumerate() {
            for &j in ins {
                assert!(j < i, "node {i} may only consume earlier nodes, got {j}");
            }
        }
        for &l in &self.leaves {
            assert!(l < self.node_inputs.len(), "leaf {l} out of range");
        }
    }
}

/// Full network specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Input image channels.
    pub input_channels: usize,
    /// The phases.
    pub phases: Vec<PhaseNetSpec>,
    /// Classifier classes.
    pub num_classes: usize,
}

/// Conv → BN → ReLU composite block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ConvBnRelu {
    conv: Conv2d,
    bn: BatchNorm2d,
    relu: Relu,
}

impl ConvBnRelu {
    fn new<R: Rng + ?Sized>(c_in: usize, c_out: usize, kernel: usize, rng: &mut R) -> Self {
        ConvBnRelu {
            conv: Conv2d::new(c_in, c_out, kernel, rng),
            bn: BatchNorm2d::new(c_out),
            relu: Relu::new(),
        }
    }

    fn forward_ws(&mut self, x: &Tensor4, training: bool, ws: &mut Workspace) -> Tensor4 {
        let a = self.conv.forward_ws(x, ws);
        let b = self.bn.forward_ws(&a, training, ws);
        ws.give4(a);
        self.relu.forward_owned(b)
    }

    fn backward_ws(&mut self, grad: Tensor4, ws: &mut Workspace) -> Tensor4 {
        let g = self.relu.backward_owned(grad);
        let g = self.bn.backward_owned(g, ws);
        let gin = self.conv.backward_ws(&g, ws);
        ws.give4(g);
        gin
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.conv.visit_params(f);
        self.bn.visit_params(f);
    }

    fn rebuild_buffers(&mut self) {
        self.conv.rebuild_buffers();
        self.bn.rebuild_buffers();
    }

    fn set_conv_impl(&mut self, conv_impl: ConvImpl) {
        self.conv.set_impl(conv_impl);
    }

    fn flops(&self, h: usize, w: usize) -> f64 {
        self.conv.flops(h, w) + self.bn.flops(h, w) + self.relu.flops(self.conv.c_out, h, w)
    }
}

/// One instantiated phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PhaseBlock {
    spec: PhaseNetSpec,
    stem: ConvBnRelu,
    nodes: Vec<ConvBnRelu>,
    pool: MaxPool2d,
    #[serde(skip)]
    cache: Option<PhaseCache>,
    /// Persistent node-output slots: drained back into the workspace at
    /// the end of every forward, so only the `Vec` capacity survives.
    #[serde(skip)]
    node_outs: Vec<Tensor4>,
    /// Persistent node-gradient slots (see `node_outs`).
    #[serde(skip)]
    node_grads: Vec<Tensor4>,
}

#[derive(Debug, Clone)]
struct PhaseCache {
    // Each conv block caches its own input for backward; the phase only
    // needs the stem output's shape (the stem activation's gradient path
    // flows through `stem.backward_ws`).
    stem_shape: (usize, usize, usize, usize),
}

impl PhaseBlock {
    fn new<R: Rng + ?Sized>(c_in: usize, spec: &PhaseNetSpec, rng: &mut R) -> Self {
        spec.validate();
        let stem = ConvBnRelu::new(c_in, spec.out_channels, spec.kernel, rng);
        let nodes = (0..spec.node_inputs.len())
            .map(|_| ConvBnRelu::new(spec.out_channels, spec.out_channels, spec.kernel, rng))
            .collect();
        PhaseBlock {
            spec: spec.clone(),
            stem,
            nodes,
            pool: MaxPool2d::new(),
            cache: None,
            node_outs: Vec::new(),
            node_grads: Vec::new(),
        }
    }

    fn forward_ws(&mut self, x: &Tensor4, training: bool, ws: &mut Workspace) -> Tensor4 {
        let stem_out = self.stem.forward_ws(x, training, ws);
        let mut node_outs = std::mem::take(&mut self.node_outs);
        node_outs.reserve(self.nodes.len());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let out = if self.spec.node_inputs[i].is_empty() {
                node.forward_ws(&stem_out, training, ws)
            } else {
                let mut acc = ws.t4_copy(&node_outs[self.spec.node_inputs[i][0]]);
                for &j in &self.spec.node_inputs[i][1..] {
                    acc.add_assign(&node_outs[j]);
                }
                let out = node.forward_ws(&acc, training, ws);
                ws.give4(acc);
                out
            };
            node_outs.push(out);
        }
        let mut out = ws.t4_copy(&node_outs[self.spec.leaves[0]]);
        for &l in &self.spec.leaves[1..] {
            out.add_assign(&node_outs[l]);
        }
        if self.spec.skip {
            out.add_assign(&stem_out);
        }
        for t in node_outs.drain(..) {
            ws.give4(t);
        }
        self.node_outs = node_outs;
        self.cache = Some(PhaseCache {
            stem_shape: stem_out.shape(),
        });
        ws.give4(stem_out);
        let pooled = self.pool.forward_ws(&out, ws);
        ws.give4(out);
        pooled
    }

    fn backward_ws(&mut self, grad: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        let Some(cache) = self.cache.take() else {
            panic!("phase backward before forward")
        };
        let grad = self.pool.backward_ws(grad, ws);
        let (n, c, h, w) = cache.stem_shape;
        let mut node_grads = std::mem::take(&mut self.node_grads);
        node_grads.reserve(self.nodes.len());
        for _ in 0..self.nodes.len() {
            node_grads.push(ws.t4_zeroed(n, c, h, w));
        }
        let mut stem_grad = ws.t4_zeroed(n, c, h, w);
        for &l in &self.spec.leaves {
            node_grads[l].add_assign(&grad);
        }
        if self.spec.skip {
            stem_grad.add_assign(&grad);
        }
        ws.give4(grad);
        for i in (0..self.nodes.len()).rev() {
            // Skip inactive gradients cheaply: an all-zero grad still
            // back-propagates to zero, but the conv backward is expensive.
            let ng = std::mem::replace(&mut node_grads[i], empty_t4());
            let gin = self.nodes[i].backward_ws(ng, ws);
            if self.spec.node_inputs[i].is_empty() {
                stem_grad.add_assign(&gin);
            } else {
                for &j in &self.spec.node_inputs[i] {
                    node_grads[j].add_assign(&gin);
                }
            }
            ws.give4(gin);
        }
        for t in node_grads.drain(..) {
            ws.give4(t);
        }
        self.node_grads = node_grads;
        self.stem.backward_ws(stem_grad, ws)
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.stem.visit_params(f);
        for node in &mut self.nodes {
            node.visit_params(f);
        }
    }

    fn rebuild_buffers(&mut self) {
        self.stem.rebuild_buffers();
        for node in &mut self.nodes {
            node.rebuild_buffers();
        }
        self.cache = None;
    }

    fn set_conv_impl(&mut self, conv_impl: ConvImpl) {
        self.stem.set_conv_impl(conv_impl);
        for node in &mut self.nodes {
            node.set_conv_impl(conv_impl);
        }
    }

    fn flops(&self, h: usize, w: usize) -> f64 {
        let mut total = self.stem.flops(h, w);
        for node in &self.nodes {
            total += node.flops(h, w);
        }
        // Sum joins + skip + pool.
        let joins: usize = self
            .spec
            .node_inputs
            .iter()
            .map(|ins| ins.len().saturating_sub(1))
            .sum::<usize>()
            + self.spec.leaves.len().saturating_sub(1)
            + usize::from(self.spec.skip);
        total += (joins * self.spec.out_channels * h * w) as f64;
        total += self.pool.flops(self.spec.out_channels, h, w);
        total
    }
}

/// A trainable phase-DAG network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    spec: NetSpec,
    phases: Vec<PhaseBlock>,
    gap: GlobalAvgPool,
    classifier: Dense,
}

impl Network {
    /// Instantiate a network from its spec with seeded weights.
    pub fn new<R: Rng + ?Sized>(spec: &NetSpec, rng: &mut R) -> Self {
        assert!(!spec.phases.is_empty(), "network needs at least one phase");
        let mut phases = Vec::with_capacity(spec.phases.len());
        let mut c_in = spec.input_channels;
        for ps in &spec.phases {
            phases.push(PhaseBlock::new(c_in, ps, rng));
            c_in = ps.out_channels;
        }
        let classifier = Dense::new(c_in, spec.num_classes, rng);
        Network {
            spec: spec.clone(),
            phases,
            gap: GlobalAvgPool::new(),
            classifier,
        }
    }

    /// The spec this network was built from.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Forward pass returning classifier logits. Convenience wrapper over
    /// [`forward_ws`](Self::forward_ws) with a throwaway workspace.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor2 {
        self.forward_ws(x, training, &mut Workspace::default())
    }

    /// Forward pass drawing every intermediate activation from `ws`. The
    /// returned logits borrow pool storage; recycle them with
    /// [`Workspace::give2`] when done.
    pub fn forward_ws(&mut self, x: &Tensor4, training: bool, ws: &mut Workspace) -> Tensor2 {
        let mut act = self.phases[0].forward_ws(x, training, ws);
        for phase in &mut self.phases[1..] {
            let next = phase.forward_ws(&act, training, ws);
            ws.give4(act);
            act = next;
        }
        let pooled = self.gap.forward_ws(&act, ws);
        ws.give4(act);
        let logits = self.classifier.forward_ws(&pooled, ws);
        ws.give2(pooled);
        logits
    }

    /// Backward pass from logits gradient. Convenience wrapper over
    /// [`backward_ws`](Self::backward_ws) with a throwaway workspace.
    pub fn backward(&mut self, dlogits: &Tensor2) {
        self.backward_ws(dlogits, &mut Workspace::default());
    }

    /// Backward pass drawing every intermediate gradient from `ws`.
    pub fn backward_ws(&mut self, dlogits: &Tensor2, ws: &mut Workspace) {
        let g = self.classifier.backward_ws(dlogits, ws);
        let mut g4 = self.gap.backward_ws(&g, ws);
        ws.give2(g);
        for phase in self.phases.iter_mut().rev() {
            let next = phase.backward_ws(&g4, ws);
            ws.give4(g4);
            g4 = next;
        }
        ws.give4(g4);
    }

    /// Visit all `(param, grad)` pairs in a stable order.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        for phase in &mut self.phases {
            phase.visit_params(f);
        }
        self.classifier.visit_params(f);
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p, _| count += p.len());
        count
    }

    /// Exact forward FLOPs for one sample of `input_hw` pixels.
    pub fn flops(&self, input_hw: (usize, usize)) -> f64 {
        let (mut h, mut w) = input_hw;
        let mut total = 0.0;
        for phase in &self.phases {
            total += phase.flops(h, w);
            h = (h / 2).max(1);
            w = (w / 2).max(1);
        }
        let Some(last_phase) = self.spec.phases.last() else {
            unreachable!("spec has at least one phase")
        };
        let c_last = last_phase.out_channels;
        total += (c_last * h * w) as f64; // global average pool
        total += self.classifier.flops();
        total
    }

    /// Classification accuracy (%) over a labeled set of images.
    /// Evaluates in bounded-size chunks (see
    /// [`evaluate_chunked`](Self::evaluate_chunked)); per-sample inference
    /// is independent in eval mode, so the result is bitwise identical to
    /// a single whole-set forward.
    pub fn evaluate(&mut self, images: &Tensor4, labels: &[usize]) -> f32 {
        self.evaluate_chunked(images, labels, DEFAULT_EVAL_CHUNK)
    }

    /// Accuracy over `images`, forwarding at most `chunk` samples at a
    /// time (capping peak activation memory) and spreading chunks across
    /// the intra-op thread budget with one network clone per worker.
    /// Chunking and threading cannot change the result: eval-mode forward
    /// treats every sample independently (per-sample im2col, running BN
    /// stats, row-wise dense), and the correct-count sum is an integer.
    ///
    /// An empty label set returns the sentinel `0.0` — accuracy over zero
    /// samples is undefined, and `0.0` keeps batch-mode search callers
    /// (which treat accuracy as a fitness to maximize) conservative.
    /// Callers that must *distinguish* "empty input" from "every sample
    /// misclassified" (the serve batcher, admission control) use
    /// [`try_evaluate_chunked`](Self::try_evaluate_chunked) instead.
    pub fn evaluate_chunked(&mut self, images: &Tensor4, labels: &[usize], chunk: usize) -> f32 {
        assert_eq!(images.n, labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let chunk = chunk.max(1);
        let n = images.n;
        let n_chunks = n.div_ceil(chunk);
        let threads = gemm::resolved_threads(n_chunks);
        let correct: usize = if threads <= 1 {
            let mut ws = Workspace::new();
            (0..n_chunks)
                .map(|i| {
                    let start = i * chunk;
                    self.eval_chunk(images, labels, start, (start + chunk).min(n), &mut ws)
                })
                .sum()
        } else {
            // Contiguous runs of chunks per worker; each worker clones the
            // network once and reuses one warm workspace across its run.
            let runs: Vec<(usize, usize)> = (0..threads)
                .map(|t| {
                    let per = n_chunks.div_ceil(threads);
                    (t * per, ((t + 1) * per).min(n_chunks))
                })
                .filter(|(a, b)| a < b)
                .collect();
            let mut clones: Vec<Network> = (1..runs.len()).map(|_| self.clone()).collect();
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(clones.len());
                for (net, &(c0, c1)) in clones.iter_mut().zip(&runs[1..]) {
                    handles.push(s.spawn(move || {
                        let mut ws = Workspace::new();
                        (c0..c1)
                            .map(|i| {
                                let start = i * chunk;
                                net.eval_chunk(
                                    images,
                                    labels,
                                    start,
                                    (start + chunk).min(n),
                                    &mut ws,
                                )
                            })
                            .sum::<usize>()
                    }));
                }
                let (c0, c1) = runs[0];
                let mut ws = Workspace::new();
                let mut total: usize = (c0..c1)
                    .map(|i| {
                        let start = i * chunk;
                        self.eval_chunk(images, labels, start, (start + chunk).min(n), &mut ws)
                    })
                    .sum();
                for h in handles {
                    total += match h.join() {
                        Ok(correct) => correct,
                        Err(payload) => std::panic::resume_unwind(payload),
                    };
                }
                total
            })
        };
        100.0 * correct as f32 / labels.len() as f32
    }

    /// Fallible form of [`evaluate_chunked`](Self::evaluate_chunked): an
    /// empty label set is a typed [`A4nnError::Config`] rather than the
    /// `0.0` sentinel, so long-running callers (the serve batcher) can
    /// tell "nothing to evaluate" apart from "0% accuracy". Non-empty
    /// inputs produce bitwise-identical results to the infallible path.
    pub fn try_evaluate_chunked(
        &mut self,
        images: &Tensor4,
        labels: &[usize],
        chunk: usize,
    ) -> Result<f32, A4nnError> {
        if labels.is_empty() {
            return Err(A4nnError::Config(
                "cannot evaluate an empty label set: accuracy over zero samples is undefined"
                    .into(),
            ));
        }
        Ok(self.evaluate_chunked(images, labels, chunk))
    }

    /// Forward samples `start..end` in eval mode and count correct
    /// predictions, with all scratch drawn from `ws`.
    fn eval_chunk(
        &mut self,
        images: &Tensor4,
        labels: &[usize],
        start: usize,
        end: usize,
        ws: &mut Workspace,
    ) -> usize {
        let (_, c, h, w) = images.shape();
        let stride = c * h * w;
        let mut x = ws.t4_scratch(end - start, c, h, w);
        x.data_mut()
            .copy_from_slice(&images.data()[start * stride..end * stride]);
        let logits = self.forward_ws(&x, false, ws);
        ws.give4(x);
        let correct = count_correct(&logits, &labels[start..end]);
        ws.give2(logits);
        correct
    }

    /// Accuracy over a [`Dataset`] without materializing it as one tensor:
    /// chunks are copied straight from the dataset's flat storage into a
    /// pooled batch buffer. Serial over chunks (inner ops still use the
    /// intra-op budget); `ws` persists across calls so steady-state
    /// evaluation allocates nothing.
    ///
    /// An empty dataset returns the sentinel `0.0`, matching
    /// [`evaluate_chunked`](Self::evaluate_chunked); use
    /// [`try_evaluate_dataset`](Self::try_evaluate_dataset) where empty
    /// input must be a typed error.
    pub fn evaluate_dataset(&mut self, ds: &Dataset, chunk: usize, ws: &mut Workspace) -> f32 {
        if ds.is_empty() {
            return 0.0;
        }
        let chunk = chunk.max(1);
        let mut x = ws.t4_scratch(chunk.min(ds.len()), ds.channels, ds.height, ds.width);
        let mut correct = 0usize;
        let mut start = 0;
        while start < ds.len() {
            let end = (start + chunk).min(ds.len());
            ds.copy_range_into(start, end, &mut x);
            let logits = self.forward_ws(&x, false, ws);
            correct += count_correct(&logits, &ds.labels[start..end]);
            ws.give2(logits);
            start = end;
        }
        ws.give4(x);
        100.0 * correct as f32 / ds.len() as f32
    }

    /// Fallible form of [`evaluate_dataset`](Self::evaluate_dataset):
    /// rejects an empty dataset with [`A4nnError::Config`] instead of
    /// returning the `0.0` sentinel.
    pub fn try_evaluate_dataset(
        &mut self,
        ds: &Dataset,
        chunk: usize,
        ws: &mut Workspace,
    ) -> Result<f32, A4nnError> {
        if ds.is_empty() {
            return Err(A4nnError::Config(
                "cannot evaluate an empty dataset: accuracy over zero samples is undefined".into(),
            ));
        }
        Ok(self.evaluate_dataset(ds, chunk, ws))
    }

    /// Rebuild transient buffers after deserialization.
    pub fn rebuild_buffers(&mut self) {
        for phase in &mut self.phases {
            phase.rebuild_buffers();
        }
        self.classifier.rebuild_buffers();
    }

    /// Select the convolution backend for every conv in the network.
    pub fn set_conv_impl(&mut self, conv_impl: ConvImpl) {
        for phase in &mut self.phases {
            phase.set_conv_impl(conv_impl);
        }
    }

    /// Select the dense (classifier) compute backend.
    pub fn set_dense_impl(&mut self, dense_impl: DenseImpl) {
        self.classifier.set_impl(dense_impl);
    }
}

/// Count rows of `logits` whose argmax matches the label. The argmax is
/// a plain `max_by` over `total_cmp` — the same reduction whether the
/// rows arrive chunked or whole, so both evaluation paths agree bitwise.
fn count_correct(logits: &Tensor2, labels: &[usize]) -> usize {
    let mut correct = 0;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let Some((pred, _)) = row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) else {
            unreachable!("logits row is non-empty")
        };
        if pred == label {
            correct += 1;
        }
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use crate::optim::Sgd;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn tiny_spec() -> NetSpec {
        NetSpec {
            input_channels: 1,
            phases: vec![
                PhaseNetSpec {
                    out_channels: 4,
                    kernel: 3,
                    node_inputs: vec![vec![], vec![0]],
                    leaves: vec![1],
                    skip: true,
                },
                PhaseNetSpec::degenerate(8, 3),
            ],
            num_classes: 2,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut net = Network::new(&tiny_spec(), &mut rng(1));
        let x = Tensor4::zeros(3, 1, 8, 8);
        let logits = net.forward(&x, true);
        assert_eq!(logits.rows, 3);
        assert_eq!(logits.cols, 2);
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let mut net = Network::new(&tiny_spec(), &mut rng(2));
        let count = net.param_count();
        assert!(count > 100);
        assert_eq!(net.param_count(), count);
    }

    #[test]
    fn flops_positive_and_monotone_in_resolution() {
        let net = Network::new(&tiny_spec(), &mut rng(3));
        let lo = net.flops((8, 8));
        let hi = net.flops((16, 16));
        assert!(lo > 0.0);
        assert!(hi > lo);
    }

    #[test]
    fn deterministic_construction() {
        let mut a = Network::new(&tiny_spec(), &mut rng(5));
        let mut b = Network::new(&tiny_spec(), &mut rng(5));
        let x = Tensor4::zeros(1, 1, 8, 8);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
    }

    #[test]
    fn training_reduces_loss_on_separable_toy_task() {
        // Class 0: bright top half; class 1: bright bottom half.
        let mut r = rng(7);
        let n = 32;
        let mut images = Tensor4::zeros(n, 1, 8, 8);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            labels.push(label);
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if label == 0 { y < 4 } else { y >= 4 };
                    let base = if bright { 1.0 } else { 0.0 };
                    images.set(i, 0, y, x, base + r.gen_range(-0.1..0.1));
                }
            }
        }
        let mut net = Network::new(&tiny_spec(), &mut r);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..30 {
            let logits = net.forward(&images, true);
            let out = cross_entropy(&logits, &labels);
            net.backward(&out.dlogits);
            opt.step(&mut net);
            first_loss.get_or_insert(out.loss);
            last_loss = out.loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss {} -> {last_loss}",
            first_loss.unwrap()
        );
        let acc = net.evaluate(&images, &labels);
        assert!(acc > 90.0, "train accuracy {acc}");
    }

    #[test]
    fn evaluate_on_empty_set_is_zero() {
        let mut net = Network::new(&tiny_spec(), &mut rng(8));
        let acc = net.evaluate(&Tensor4::zeros(0, 1, 8, 8), &[]);
        assert_eq!(acc, 0.0);
    }

    #[test]
    #[should_panic(expected = "earlier nodes")]
    fn forward_reference_in_spec_panics() {
        let spec = NetSpec {
            input_channels: 1,
            phases: vec![PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                node_inputs: vec![vec![1], vec![]], // node 0 consuming node 1
                leaves: vec![1],
                skip: false,
            }],
            num_classes: 2,
        };
        let _ = Network::new(&spec, &mut rng(9));
    }

    #[test]
    fn multi_leaf_and_join_phase_trains() {
        let spec = NetSpec {
            input_channels: 1,
            phases: vec![PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                // Diamond: 0 and 1 read stem; 2 joins both; leaves 2.
                node_inputs: vec![vec![], vec![], vec![0, 1]],
                leaves: vec![2],
                skip: true,
            }],
            num_classes: 2,
        };
        let mut net = Network::new(&spec, &mut rng(10));
        let x = Tensor4::zeros(2, 1, 8, 8);
        let logits = net.forward(&x, true);
        let out = cross_entropy(&logits, &[0, 1]);
        net.backward(&out.dlogits); // must not panic
    }
}
