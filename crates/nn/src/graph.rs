//! Phase-DAG networks: the trainable realization of a decoded NSGA-Net
//! macro genome.
//!
//! A [`Network`] is a chain of phases; each phase is a stem conv block
//! followed by a DAG of conv blocks with sum joins, an optional residual
//! skip from the stem to the phase output, and a 2×2 max pool. The network
//! ends with global average pooling and a dense classifier.
//!
//! The crate stays decoupled from `a4nn-genome` by accepting a neutral
//! [`NetSpec`]; the workflow crate converts decoded genomes into specs.

use crate::layers::{
    BatchNorm2d, Conv2d, ConvImpl, Dense, GlobalAvgPool, MaxPool2d, ParamVisitor, Relu,
};
use crate::tensor::{Tensor2, Tensor4};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Specification of one phase. Node indices refer to positions in
/// `node_inputs`; an empty input list means the node reads the stem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseNetSpec {
    /// Phase width (stem and node output channels).
    pub out_channels: usize,
    /// Conv kernel side.
    pub kernel: usize,
    /// Per-node input lists; `node_inputs[i]` only references `j < i`.
    pub node_inputs: Vec<Vec<usize>>,
    /// Nodes whose outputs are summed into the phase output. Must be
    /// non-empty when `node_inputs` is non-empty.
    pub leaves: Vec<usize>,
    /// Residual connection from the stem output to the phase output.
    pub skip: bool,
}

impl PhaseNetSpec {
    /// A degenerate phase: stem plus a single default conv block.
    pub fn degenerate(out_channels: usize, kernel: usize) -> Self {
        PhaseNetSpec {
            out_channels,
            kernel,
            node_inputs: vec![vec![]],
            leaves: vec![0],
            skip: false,
        }
    }

    fn validate(&self) {
        assert!(
            !self.node_inputs.is_empty(),
            "phase needs at least one node"
        );
        assert!(!self.leaves.is_empty(), "phase needs at least one leaf");
        for (i, ins) in self.node_inputs.iter().enumerate() {
            for &j in ins {
                assert!(j < i, "node {i} may only consume earlier nodes, got {j}");
            }
        }
        for &l in &self.leaves {
            assert!(l < self.node_inputs.len(), "leaf {l} out of range");
        }
    }
}

/// Full network specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Input image channels.
    pub input_channels: usize,
    /// The phases.
    pub phases: Vec<PhaseNetSpec>,
    /// Classifier classes.
    pub num_classes: usize,
}

/// Conv → BN → ReLU composite block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ConvBnRelu {
    conv: Conv2d,
    bn: BatchNorm2d,
    relu: Relu,
}

impl ConvBnRelu {
    fn new<R: Rng + ?Sized>(c_in: usize, c_out: usize, kernel: usize, rng: &mut R) -> Self {
        ConvBnRelu {
            conv: Conv2d::new(c_in, c_out, kernel, rng),
            bn: BatchNorm2d::new(c_out),
            relu: Relu::new(),
        }
    }

    fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        let a = self.conv.forward(x);
        let b = self.bn.forward(&a, training);
        self.relu.forward(&b)
    }

    fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        let g = self.relu.backward(grad);
        let g = self.bn.backward(&g);
        self.conv.backward(&g)
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.conv.visit_params(f);
        self.bn.visit_params(f);
    }

    fn rebuild_buffers(&mut self) {
        self.conv.rebuild_buffers();
        self.bn.rebuild_buffers();
    }

    fn set_conv_impl(&mut self, conv_impl: ConvImpl) {
        self.conv.set_impl(conv_impl);
    }

    fn flops(&self, h: usize, w: usize) -> f64 {
        self.conv.flops(h, w) + self.bn.flops(h, w) + self.relu.flops(self.conv.c_out, h, w)
    }
}

/// One instantiated phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PhaseBlock {
    spec: PhaseNetSpec,
    stem: ConvBnRelu,
    nodes: Vec<ConvBnRelu>,
    pool: MaxPool2d,
    #[serde(skip)]
    cache: Option<PhaseCache>,
}

#[derive(Debug, Clone)]
struct PhaseCache {
    // Each conv block caches its own input for backward; the phase only
    // needs the stem output's shape (and the stem activation for the
    // residual gradient path, which flows through `stem.backward`).
    stem_out: Tensor4,
}

impl PhaseBlock {
    fn new<R: Rng + ?Sized>(c_in: usize, spec: &PhaseNetSpec, rng: &mut R) -> Self {
        spec.validate();
        let stem = ConvBnRelu::new(c_in, spec.out_channels, spec.kernel, rng);
        let nodes = (0..spec.node_inputs.len())
            .map(|_| ConvBnRelu::new(spec.out_channels, spec.out_channels, spec.kernel, rng))
            .collect();
        PhaseBlock {
            spec: spec.clone(),
            stem,
            nodes,
            pool: MaxPool2d::new(),
            cache: None,
        }
    }

    fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        let stem_out = self.stem.forward(x, training);
        let mut node_outs: Vec<Tensor4> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let input = if self.spec.node_inputs[i].is_empty() {
                stem_out.clone()
            } else {
                let mut acc = node_outs[self.spec.node_inputs[i][0]].clone();
                for &j in &self.spec.node_inputs[i][1..] {
                    acc.add_assign(&node_outs[j]);
                }
                acc
            };
            node_outs.push(node.forward(&input, training));
        }
        let mut out = node_outs[self.spec.leaves[0]].clone();
        for &l in &self.spec.leaves[1..] {
            out.add_assign(&node_outs[l]);
        }
        if self.spec.skip {
            out.add_assign(&stem_out);
        }
        drop(node_outs);
        self.cache = Some(PhaseCache { stem_out });
        self.pool.forward(&out)
    }

    fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        let cache = self.cache.take().expect("phase backward before forward");
        let grad = self.pool.backward(grad);
        let (n, c, h, w) = cache.stem_out.shape();
        let mut node_grads: Vec<Tensor4> = (0..self.nodes.len())
            .map(|_| Tensor4::zeros(n, c, h, w))
            .collect();
        let mut stem_grad = Tensor4::zeros(n, c, h, w);
        for &l in &self.spec.leaves {
            node_grads[l].add_assign(&grad);
        }
        if self.spec.skip {
            stem_grad.add_assign(&grad);
        }
        for i in (0..self.nodes.len()).rev() {
            // Skip inactive gradients cheaply: an all-zero grad still
            // back-propagates to zero, but the conv backward is expensive.
            let gin = self.nodes[i].backward(&node_grads[i]);
            if self.spec.node_inputs[i].is_empty() {
                stem_grad.add_assign(&gin);
            } else {
                for &j in &self.spec.node_inputs[i] {
                    node_grads[j].add_assign(&gin);
                }
            }
        }
        self.stem.backward(&stem_grad)
    }

    fn visit_params(&mut self, f: ParamVisitor<'_>) {
        self.stem.visit_params(f);
        for node in &mut self.nodes {
            node.visit_params(f);
        }
    }

    fn rebuild_buffers(&mut self) {
        self.stem.rebuild_buffers();
        for node in &mut self.nodes {
            node.rebuild_buffers();
        }
        self.cache = None;
    }

    fn set_conv_impl(&mut self, conv_impl: ConvImpl) {
        self.stem.set_conv_impl(conv_impl);
        for node in &mut self.nodes {
            node.set_conv_impl(conv_impl);
        }
    }

    fn flops(&self, h: usize, w: usize) -> f64 {
        let mut total = self.stem.flops(h, w);
        for node in &self.nodes {
            total += node.flops(h, w);
        }
        // Sum joins + skip + pool.
        let joins: usize = self
            .spec
            .node_inputs
            .iter()
            .map(|ins| ins.len().saturating_sub(1))
            .sum::<usize>()
            + self.spec.leaves.len().saturating_sub(1)
            + usize::from(self.spec.skip);
        total += (joins * self.spec.out_channels * h * w) as f64;
        total += self.pool.flops(self.spec.out_channels, h, w);
        total
    }
}

/// A trainable phase-DAG network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    spec: NetSpec,
    phases: Vec<PhaseBlock>,
    gap: GlobalAvgPool,
    classifier: Dense,
}

impl Network {
    /// Instantiate a network from its spec with seeded weights.
    pub fn new<R: Rng + ?Sized>(spec: &NetSpec, rng: &mut R) -> Self {
        assert!(!spec.phases.is_empty(), "network needs at least one phase");
        let mut phases = Vec::with_capacity(spec.phases.len());
        let mut c_in = spec.input_channels;
        for ps in &spec.phases {
            phases.push(PhaseBlock::new(c_in, ps, rng));
            c_in = ps.out_channels;
        }
        let classifier = Dense::new(c_in, spec.num_classes, rng);
        Network {
            spec: spec.clone(),
            phases,
            gap: GlobalAvgPool::new(),
            classifier,
        }
    }

    /// The spec this network was built from.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Forward pass returning classifier logits.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor2 {
        let mut act = self.phases[0].forward(x, training);
        for phase in &mut self.phases[1..] {
            act = phase.forward(&act, training);
        }
        let pooled = self.gap.forward(&act);
        self.classifier.forward(&pooled)
    }

    /// Backward pass from logits gradient.
    pub fn backward(&mut self, dlogits: &Tensor2) {
        let g = self.classifier.backward(dlogits);
        let mut g = self.gap.backward(&g);
        for phase in self.phases.iter_mut().rev() {
            g = phase.backward(&g);
        }
    }

    /// Visit all `(param, grad)` pairs in a stable order.
    pub fn visit_params(&mut self, f: ParamVisitor<'_>) {
        for phase in &mut self.phases {
            phase.visit_params(f);
        }
        self.classifier.visit_params(f);
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p, _| count += p.len());
        count
    }

    /// Exact forward FLOPs for one sample of `input_hw` pixels.
    pub fn flops(&self, input_hw: (usize, usize)) -> f64 {
        let (mut h, mut w) = input_hw;
        let mut total = 0.0;
        for phase in &self.phases {
            total += phase.flops(h, w);
            h = (h / 2).max(1);
            w = (w / 2).max(1);
        }
        let c_last = self.spec.phases.last().unwrap().out_channels;
        total += (c_last * h * w) as f64; // global average pool
        total += self.classifier.flops();
        total
    }

    /// Classification accuracy (%) over a labeled set of images.
    pub fn evaluate(&mut self, images: &Tensor4, labels: &[usize]) -> f32 {
        assert_eq!(images.n, labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let logits = self.forward(images, false);
        let mut correct = 0;
        for (r, &label) in labels.iter().enumerate() {
            let row = logits.row(r);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            if pred == label {
                correct += 1;
            }
        }
        100.0 * correct as f32 / labels.len() as f32
    }

    /// Rebuild transient buffers after deserialization.
    pub fn rebuild_buffers(&mut self) {
        for phase in &mut self.phases {
            phase.rebuild_buffers();
        }
        self.classifier.rebuild_buffers();
    }

    /// Select the convolution backend for every conv in the network.
    pub fn set_conv_impl(&mut self, conv_impl: ConvImpl) {
        for phase in &mut self.phases {
            phase.set_conv_impl(conv_impl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use crate::optim::Sgd;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn tiny_spec() -> NetSpec {
        NetSpec {
            input_channels: 1,
            phases: vec![
                PhaseNetSpec {
                    out_channels: 4,
                    kernel: 3,
                    node_inputs: vec![vec![], vec![0]],
                    leaves: vec![1],
                    skip: true,
                },
                PhaseNetSpec::degenerate(8, 3),
            ],
            num_classes: 2,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut net = Network::new(&tiny_spec(), &mut rng(1));
        let x = Tensor4::zeros(3, 1, 8, 8);
        let logits = net.forward(&x, true);
        assert_eq!(logits.rows, 3);
        assert_eq!(logits.cols, 2);
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let mut net = Network::new(&tiny_spec(), &mut rng(2));
        let count = net.param_count();
        assert!(count > 100);
        assert_eq!(net.param_count(), count);
    }

    #[test]
    fn flops_positive_and_monotone_in_resolution() {
        let net = Network::new(&tiny_spec(), &mut rng(3));
        let lo = net.flops((8, 8));
        let hi = net.flops((16, 16));
        assert!(lo > 0.0);
        assert!(hi > lo);
    }

    #[test]
    fn deterministic_construction() {
        let mut a = Network::new(&tiny_spec(), &mut rng(5));
        let mut b = Network::new(&tiny_spec(), &mut rng(5));
        let x = Tensor4::zeros(1, 1, 8, 8);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
    }

    #[test]
    fn training_reduces_loss_on_separable_toy_task() {
        // Class 0: bright top half; class 1: bright bottom half.
        let mut r = rng(7);
        let n = 32;
        let mut images = Tensor4::zeros(n, 1, 8, 8);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            labels.push(label);
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if label == 0 { y < 4 } else { y >= 4 };
                    let base = if bright { 1.0 } else { 0.0 };
                    images.set(i, 0, y, x, base + r.gen_range(-0.1..0.1));
                }
            }
        }
        let mut net = Network::new(&tiny_spec(), &mut r);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..30 {
            let logits = net.forward(&images, true);
            let out = cross_entropy(&logits, &labels);
            net.backward(&out.dlogits);
            opt.step(&mut net);
            first_loss.get_or_insert(out.loss);
            last_loss = out.loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss {} -> {last_loss}",
            first_loss.unwrap()
        );
        let acc = net.evaluate(&images, &labels);
        assert!(acc > 90.0, "train accuracy {acc}");
    }

    #[test]
    fn evaluate_on_empty_set_is_zero() {
        let mut net = Network::new(&tiny_spec(), &mut rng(8));
        let acc = net.evaluate(&Tensor4::zeros(0, 1, 8, 8), &[]);
        assert_eq!(acc, 0.0);
    }

    #[test]
    #[should_panic(expected = "earlier nodes")]
    fn forward_reference_in_spec_panics() {
        let spec = NetSpec {
            input_channels: 1,
            phases: vec![PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                node_inputs: vec![vec![1], vec![]], // node 0 consuming node 1
                leaves: vec![1],
                skip: false,
            }],
            num_classes: 2,
        };
        let _ = Network::new(&spec, &mut rng(9));
    }

    #[test]
    fn multi_leaf_and_join_phase_trains() {
        let spec = NetSpec {
            input_channels: 1,
            phases: vec![PhaseNetSpec {
                out_channels: 4,
                kernel: 3,
                // Diamond: 0 and 1 read stem; 2 joins both; leaves 2.
                node_inputs: vec![vec![], vec![], vec![0, 1]],
                leaves: vec![2],
                skip: true,
            }],
            num_classes: 2,
        };
        let mut net = Network::new(&spec, &mut rng(10));
        let x = Tensor4::zeros(2, 1, 8, 8);
        let logits = net.forward(&x, true);
        let out = cross_entropy(&logits, &[0, 1]);
        net.backward(&out.dlogits); // must not panic
    }
}
