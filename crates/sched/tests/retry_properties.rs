//! Property tests for the fault-tolerant execution layer: the real
//! thread pool ([`GpuPool::run_batch_retry`]) and its simulated twin
//! ([`schedule_fifo_retry`]) under arbitrary failure patterns.
//!
//! The invariants hold for *any* fault plan in which each job fails
//! fewer times than the attempt budget allows:
//!
//! - every job completes exactly once, consuming `failures + 1` attempts;
//! - per-worker busy accounting sums to the total attempt time;
//! - the DES twin conserves time the same way, GPU by GPU.

use a4nn_sched::{schedule_fifo_retry, GpuPool, RetryPolicy, RetryTask};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A per-job failure budget: the job panics on its first `failures`
/// attempts and succeeds on attempt `failures + 1`.
fn failure_plan(max_jobs: usize, max_failures: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..=max_failures, 1..=max_jobs)
}

/// A fast policy so 32 proptest cases stay under a second of wall time.
fn fast_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff_base_s: 0.0005,
        backoff_factor: 1.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any plan with `failures < max_attempts` per job drains the whole
    /// batch: each job completes exactly once with exact attempt
    /// accounting, and no attempt ran after its job succeeded.
    #[test]
    fn pool_completes_every_job_exactly_once(
        failures in failure_plan(8, 2),
        workers in 1usize..=4,
    ) {
        let max_attempts = 3;
        let calls: Vec<AtomicU32> = failures.iter().map(|_| AtomicU32::new(0)).collect();
        let jobs: Vec<_> = failures
            .iter()
            .enumerate()
            .map(|(i, &budget)| {
                let calls = &calls;
                move |_worker: usize, attempt: u32| {
                    calls[i].fetch_add(1, Ordering::SeqCst);
                    assert!(attempt <= budget + 1, "attempt after success");
                    if attempt <= budget {
                        panic!("planned failure {attempt} of job {i}");
                    }
                    i
                }
            })
            .collect();
        let batch = GpuPool::new(workers).run_batch_retry(jobs, &fast_policy(max_attempts)).unwrap();

        for (i, &budget) in failures.iter().enumerate() {
            prop_assert_eq!(batch.outputs[i], Some(i), "job {} output", i);
            prop_assert!(batch.reports[i].status.is_completed());
            prop_assert_eq!(batch.reports[i].attempts, budget + 1);
            prop_assert_eq!(calls[i].load(Ordering::SeqCst), budget + 1);
        }
        // The attempt log agrees with the per-job reports.
        let total_attempts: u32 = failures.iter().map(|f| f + 1).sum();
        prop_assert_eq!(batch.attempts.len() as u32, total_attempts);
        let failed_attempts = batch.attempts.iter().filter(|a| a.failed).count() as u32;
        prop_assert_eq!(failed_attempts, failures.iter().sum::<u32>());
    }

    /// Per-worker busy seconds are conservation-of-time accounting: they
    /// sum to the measured duration of every attempt, successful or not.
    #[test]
    fn pool_busy_accounting_sums_to_total_attempt_time(
        failures in failure_plan(6, 1),
        workers in 1usize..=3,
    ) {
        let jobs: Vec<_> = failures
            .iter()
            .enumerate()
            .map(|(i, &budget)| {
                move |_worker: usize, attempt: u32| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    if attempt <= budget {
                        panic!("planned failure");
                    }
                    i
                }
            })
            .collect();
        let batch = GpuPool::new(workers).run_batch_retry(jobs, &fast_policy(2)).unwrap();

        prop_assert_eq!(batch.worker_busy_s.len(), workers);
        let busy: f64 = batch.worker_busy_s.iter().sum();
        let attempt_total: f64 = batch.attempts.iter().map(|a| a.seconds).sum();
        let report_total: f64 = batch.reports.iter().map(|r| r.seconds).sum();
        prop_assert!((busy - attempt_total).abs() < 1e-9,
            "busy {} != attempts {}", busy, attempt_total);
        prop_assert!((busy - report_total).abs() < 1e-9,
            "busy {} != reports {}", busy, report_total);
    }

    /// The DES twin conserves simulated time: `gpu_busy` sums to the sum
    /// of every attempt duration, and the assignment log holds exactly
    /// one entry per attempt, all within the makespan.
    #[test]
    fn des_retry_schedule_conserves_simulated_time(
        durations in proptest::collection::vec(
            proptest::collection::vec(1.0f64..50.0, 1..=3), // attempts per task
            1..=8,                                      // tasks
        ),
        n_gpus in 1usize..=4,
    ) {
        let tasks: Vec<RetryTask> = durations
            .iter()
            .enumerate()
            .map(|(i, d)| RetryTask { id: i as u64, attempt_durations: d.clone() })
            .collect();
        let policy = RetryPolicy { max_attempts: 3, backoff_base_s: 0.5, backoff_factor: 2.0 };
        let result = schedule_fifo_retry(n_gpus, &tasks, &policy);

        let total_attempts: usize = durations.iter().map(Vec::len).sum();
        prop_assert_eq!(result.assignments.len(), total_attempts);
        let busy: f64 = result.gpu_busy.iter().sum();
        let expected: f64 = durations.iter().flatten().sum();
        prop_assert!((busy - expected).abs() < 1e-6, "busy {} != {}", busy, expected);
        for a in &result.assignments {
            prop_assert!(a.end <= result.makespan + 1e-9);
            prop_assert!(a.gpu < n_gpus);
            prop_assert!(a.end > a.start);
        }
        // Each task's attempts are strictly ordered in simulated time.
        for (i, d) in durations.iter().enumerate() {
            let mine: Vec<_> = result
                .assignments
                .iter()
                .filter(|a| a.task_id == i as u64)
                .collect();
            prop_assert_eq!(mine.len(), d.len());
            for w in mine.windows(2) {
                prop_assert!(w[1].start >= w[0].end, "attempts overlap");
            }
        }
    }

    /// Simulated retries respect exponential backoff: attempt `k + 1`
    /// never starts before `fail time + backoff_s(k)`.
    #[test]
    fn des_retries_respect_backoff(
        n_failures in 1u32..=2,
        duration in 5.0f64..20.0,
    ) {
        let attempts = (0..=n_failures).map(|_| duration).collect::<Vec<_>>();
        let tasks = vec![RetryTask { id: 0, attempt_durations: attempts }];
        let policy = RetryPolicy { max_attempts: 3, backoff_base_s: 2.0, backoff_factor: 3.0 };
        let result = schedule_fifo_retry(1, &tasks, &policy);
        for (k, w) in result.assignments.windows(2).enumerate() {
            let gap = w[1].start - w[0].end;
            prop_assert!(
                gap + 1e-9 >= policy.backoff_s(k as u32 + 1),
                "retry {} started {}s after failure; backoff demands {}s",
                k + 2, gap, policy.backoff_s(k as u32 + 1)
            );
        }
    }
}
