//! # a4nn-sched — workflow resource manager
//!
//! The paper distributes NN training across GPUs with Ray's FIFO dynamic
//! scheduling (§2.5): within a generation, whenever a GPU frees up it
//! takes the next untrained network; generations are barriers, so an idle
//! tail accumulates when the generation size is not divisible by the GPU
//! count. This crate reproduces that resource manager twice over:
//!
//! - [`des`] — a **discrete-event simulator** of the GPU cluster that
//!   replays per-task durations (produced by the trainer's cost model)
//!   under FIFO scheduling and reports makespans, per-GPU busy time, and
//!   the per-generation idle tail. All the paper's wall-time figures are
//!   regenerated on this simulator.
//! - [`pool`] — a **real thread-pool executor** with the same FIFO
//!   semantics, mapping virtual GPUs onto worker threads, used when the
//!   workflow actually trains networks with `a4nn-nn`.
//! - LPT ordering lives in [`des`] as an ablation: longest-processing-
//!   time-first reduces the idle tail FIFO leaves behind.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod des;
pub mod ledger;
pub mod pool;
pub mod retry;
pub mod trace;

pub use des::{
    schedule_fifo, schedule_fifo_retry, schedule_generations, Assignment, GenerationSchedule,
    RetryTask, ScheduleResult, Task, TaskOrdering,
};
pub use ledger::{RetryEntry, RetryLedger};
pub use pool::{intra_op_threads, AttemptRecord, GpuPool, JobReport, JobStatus, RetryBatch};
pub use retry::RetryPolicy;
pub use trace::chrome_trace;
