//! Discrete-event simulation of a multi-GPU cluster under FIFO dynamic
//! scheduling with generation barriers.

use crate::retry::RetryPolicy;
use serde::{Deserialize, Serialize};

/// One unit of schedulable work: training one network to (possibly early)
/// termination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Caller-assigned id (the model id in A4NN).
    pub id: u64,
    /// Total duration in seconds.
    pub duration: f64,
}

/// How tasks are ordered before list scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOrdering {
    /// Submission order — Ray's FIFO dynamic scheduling, the paper's
    /// policy.
    Fifo,
    /// Longest processing time first — the classic makespan heuristic,
    /// provided as a scheduler ablation.
    Lpt,
}

/// Placement of one task on the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The task's id.
    pub task_id: u64,
    /// GPU index it ran on.
    pub gpu: usize,
    /// Start time (seconds since schedule origin).
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Outcome of scheduling one batch (generation) of tasks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Number of GPUs simulated.
    pub n_gpus: usize,
    /// Per-task placements, in completion-agnostic submission order.
    pub assignments: Vec<Assignment>,
    /// Time at which the last task finishes.
    pub makespan: f64,
    /// Per-GPU total busy seconds.
    pub gpu_busy: Vec<f64>,
}

impl ScheduleResult {
    /// Mean GPU utilization over the makespan (1.0 = fully busy).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.gpu_busy.iter().sum::<f64>() / (self.makespan * self.n_gpus as f64)
    }

    /// Total idle GPU-seconds accumulated before the barrier (the
    /// "downtime at the end of each generation's evaluation" of §2.5).
    pub fn idle_tail(&self) -> f64 {
        self.gpu_busy
            .iter()
            .map(|&b| (self.makespan - b).max(0.0))
            .sum()
    }
}

/// Schedule one generation of `tasks` on `n_gpus` GPUs.
///
/// FIFO dynamic scheduling: tasks are taken in order and each goes to the
/// GPU that frees up first (ties broken by lowest index, matching a single
/// ready queue drained by idle workers).
pub fn schedule_fifo(n_gpus: usize, tasks: &[Task], ordering: TaskOrdering) -> ScheduleResult {
    assert!(n_gpus > 0, "need at least one GPU");
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    if ordering == TaskOrdering::Lpt {
        // total_cmp: durations are asserted non-negative below, so this
        // matches partial_cmp on every valid input.
        order.sort_by(|&a, &b| tasks[b].duration.total_cmp(&tasks[a].duration));
    }
    let mut free_at = vec![0.0f64; n_gpus];
    let mut busy = vec![0.0f64; n_gpus];
    let mut assignments = Vec::with_capacity(tasks.len());
    for &ti in &order {
        let task = tasks[ti];
        assert!(
            task.duration >= 0.0,
            "negative duration for task {}",
            task.id
        );
        // Earliest-free GPU, lowest index on ties (`n_gpus > 0` is
        // asserted above, so the minimum exists).
        let gpu = (0..n_gpus)
            .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]).then(a.cmp(&b)))
            .unwrap_or(0);
        let start = free_at[gpu];
        let end = start + task.duration;
        free_at[gpu] = end;
        busy[gpu] += task.duration;
        assignments.push(Assignment {
            task_id: task.id,
            gpu,
            start,
            end,
        });
    }
    let makespan = free_at.iter().cloned().fold(0.0, f64::max);
    ScheduleResult {
        n_gpus,
        assignments,
        makespan,
        gpu_busy: busy,
    }
}

/// One unit of work whose attempts may fail: attempt `k` (1-based) runs
/// for `attempt_durations[k-1]` simulated seconds; every attempt before
/// the last is a failure that occupies its GPU for the full duration and
/// is then requeued after the policy's backoff (in simulated time).
/// Whether the final attempt succeeds is the caller's business — the
/// simulator only replays the durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryTask {
    /// Caller-assigned id (the model id in A4NN).
    pub id: u64,
    /// Duration of each attempt, in order. Must be non-empty.
    pub attempt_durations: Vec<f64>,
}

/// Schedule one generation of retry-capable `tasks` on `n_gpus` GPUs.
///
/// FIFO dynamic scheduling with requeue-on-failure: the ready queue is
/// drained in order by whichever GPU frees up first (lowest index on
/// ties); a failed attempt goes to the back of the queue, eligible again
/// `policy.backoff_s(attempt)` simulated seconds after it failed. The
/// returned [`ScheduleResult`] carries one [`Assignment`] per *attempt*
/// (a task's final attempt is its last assignment), and `gpu_busy`
/// includes the GPU time wasted on failed attempts.
///
/// With every task single-attempt this reduces exactly to
/// [`schedule_fifo`] under FIFO ordering.
pub fn schedule_fifo_retry(
    n_gpus: usize,
    tasks: &[RetryTask],
    policy: &RetryPolicy,
) -> ScheduleResult {
    assert!(n_gpus > 0, "need at least one GPU");
    struct Ready {
        task: usize,
        attempt: u32,
        not_before: f64,
    }
    let mut queue: std::collections::VecDeque<Ready> = tasks
        .iter()
        .enumerate()
        .map(|(task, t)| {
            assert!(
                !t.attempt_durations.is_empty(),
                "task {} has no attempts",
                t.id
            );
            assert!(
                t.attempt_durations.iter().all(|&d| d >= 0.0),
                "negative duration for task {}",
                t.id
            );
            Ready {
                task,
                attempt: 1,
                not_before: 0.0,
            }
        })
        .collect();
    let mut free_at = vec![0.0f64; n_gpus];
    let mut busy = vec![0.0f64; n_gpus];
    let total_attempts: usize = tasks.iter().map(|t| t.attempt_durations.len()).sum();
    let mut assignments = Vec::with_capacity(total_attempts);
    while !queue.is_empty() {
        // Earliest-free GPU, lowest index on ties (`n_gpus > 0` is
        // asserted above, so the minimum exists).
        let gpu = (0..n_gpus)
            .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]).then(a.cmp(&b)))
            .unwrap_or(0);
        let now = free_at[gpu];
        // FIFO among eligible entries; if none is eligible yet, the GPU
        // idles until the earliest backoff expires. The queue is
        // non-empty (loop condition), so a fallback of 0 is never taken.
        let pos = match queue.iter().position(|r| r.not_before <= now) {
            Some(pos) => pos,
            None => queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.not_before.total_cmp(&b.not_before))
                .map(|(pos, _)| pos)
                .unwrap_or(0),
        };
        let Some(ready) = queue.remove(pos) else {
            unreachable!("position from iter::position/min_by is in bounds")
        };
        let task = &tasks[ready.task];
        let duration = task.attempt_durations[(ready.attempt - 1) as usize];
        let start = now.max(ready.not_before);
        let end = start + duration;
        free_at[gpu] = end;
        busy[gpu] += duration;
        assignments.push(Assignment {
            task_id: task.id,
            gpu,
            start,
            end,
        });
        if (ready.attempt as usize) < task.attempt_durations.len() {
            queue.push_back(Ready {
                task: ready.task,
                attempt: ready.attempt + 1,
                not_before: end + policy.backoff_s(ready.attempt).max(0.0),
            });
        }
    }
    let makespan = assignments.iter().map(|a| a.end).fold(0.0, f64::max);
    ScheduleResult {
        n_gpus,
        assignments,
        makespan,
        gpu_busy: busy,
    }
}

/// Outcome of scheduling a full NAS run: one [`ScheduleResult`] per
/// generation with barriers between them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationSchedule {
    /// Per-generation results (times are generation-local).
    pub generations: Vec<ScheduleResult>,
}

impl GenerationSchedule {
    /// Total wall time: sum of generation makespans (barriers are strict).
    pub fn total_wall_time(&self) -> f64 {
        self.generations.iter().map(|g| g.makespan).sum()
    }

    /// Total busy GPU-seconds across the run.
    pub fn total_busy(&self) -> f64 {
        self.generations
            .iter()
            .map(|g| g.gpu_busy.iter().sum::<f64>())
            .sum()
    }

    /// Total idle-tail GPU-seconds across generations.
    pub fn total_idle_tail(&self) -> f64 {
        self.generations.iter().map(ScheduleResult::idle_tail).sum()
    }

    /// Mean utilization across the run.
    pub fn utilization(&self) -> f64 {
        let denom: f64 = self
            .generations
            .iter()
            .map(|g| g.makespan * g.n_gpus as f64)
            .sum();
        if denom <= 0.0 {
            0.0
        } else {
            self.total_busy() / denom
        }
    }
}

/// Schedule a sequence of generations with barriers between them.
pub fn schedule_generations(
    n_gpus: usize,
    generations: &[Vec<Task>],
    ordering: TaskOrdering,
) -> GenerationSchedule {
    GenerationSchedule {
        generations: generations
            .iter()
            .map(|tasks| schedule_fifo(n_gpus, tasks, ordering))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(durations: &[f64]) -> Vec<Task> {
        durations
            .iter()
            .enumerate()
            .map(|(i, &d)| Task {
                id: i as u64,
                duration: d,
            })
            .collect()
    }

    #[test]
    fn single_gpu_serializes_tasks() {
        let r = schedule_fifo(1, &tasks(&[3.0, 2.0, 5.0]), TaskOrdering::Fifo);
        assert_eq!(r.makespan, 10.0);
        assert!((r.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(r.assignments[1].start, 3.0);
        assert_eq!(r.assignments[2].end, 10.0);
    }

    #[test]
    fn fifo_takes_earliest_free_gpu() {
        // GPUs: g0 gets 4.0, g1 gets 1.0; third task should land on g1 at t=1.
        let r = schedule_fifo(2, &tasks(&[4.0, 1.0, 2.0]), TaskOrdering::Fifo);
        let third = r.assignments[2];
        assert_eq!(third.gpu, 1);
        assert_eq!(third.start, 1.0);
        assert_eq!(r.makespan, 4.0);
    }

    #[test]
    fn no_gpu_runs_two_tasks_at_once() {
        let r = schedule_fifo(
            3,
            &tasks(&[2.0, 3.0, 1.0, 4.0, 2.5, 0.5, 3.5]),
            TaskOrdering::Fifo,
        );
        for a in &r.assignments {
            for b in &r.assignments {
                if a.task_id != b.task_id && a.gpu == b.gpu {
                    assert!(
                        a.end <= b.start || b.end <= a.start,
                        "overlap on gpu {}: {a:?} vs {b:?}",
                        a.gpu
                    );
                }
            }
        }
    }

    #[test]
    fn every_task_is_assigned_exactly_once() {
        let t = tasks(&[1.0; 17]);
        let r = schedule_fifo(4, &t, TaskOrdering::Fifo);
        let mut ids: Vec<u64> = r.assignments.iter().map(|a| a.task_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..17).collect::<Vec<u64>>());
    }

    #[test]
    fn equal_tasks_scale_nearly_linearly() {
        let t = tasks(&[5.0; 100]);
        let one = schedule_fifo(1, &t, TaskOrdering::Fifo);
        let four = schedule_fifo(4, &t, TaskOrdering::Fifo);
        assert_eq!(one.makespan, 500.0);
        assert_eq!(four.makespan, 125.0);
    }

    #[test]
    fn idle_tail_appears_when_generation_not_divisible() {
        // 5 equal tasks on 4 GPUs: one GPU does 2, three do 1 then idle.
        let r = schedule_fifo(4, &tasks(&[10.0; 5]), TaskOrdering::Fifo);
        assert_eq!(r.makespan, 20.0);
        assert_eq!(r.idle_tail(), 30.0); // 3 GPUs idle for 10s each
        assert!(r.utilization() < 0.7);
    }

    #[test]
    fn lpt_beats_fifo_on_a_tail_heavy_instance() {
        // LPT is not universally better per instance, but on tail-heavy
        // submission orders (big jobs last) it wins clearly.
        let t = tasks(&[1.0, 1.0, 1.0, 2.0, 3.0, 7.0, 8.0, 9.0]);
        let fifo = schedule_fifo(3, &t, TaskOrdering::Fifo);
        let lpt = schedule_fifo(3, &t, TaskOrdering::Lpt);
        assert!(lpt.makespan < fifo.makespan);
    }

    #[test]
    fn generations_are_barriers() {
        let gens = vec![tasks(&[4.0, 1.0]), tasks(&[2.0, 2.0])];
        let sched = schedule_generations(2, &gens, TaskOrdering::Fifo);
        // gen0 makespan 4, gen1 makespan 2 ⇒ 6 total even though gen1
        // could have started on the free GPU at t=1.
        assert_eq!(sched.total_wall_time(), 6.0);
        assert_eq!(sched.total_busy(), 9.0);
        assert!(sched.total_idle_tail() > 0.0);
        assert!(sched.utilization() < 1.0);
    }

    #[test]
    fn empty_generation_contributes_nothing() {
        let sched = schedule_generations(2, &[vec![], tasks(&[1.0])], TaskOrdering::Fifo);
        assert_eq!(sched.total_wall_time(), 1.0);
    }

    #[test]
    fn zero_duration_tasks_are_legal() {
        let r = schedule_fifo(2, &tasks(&[0.0, 0.0, 1.0]), TaskOrdering::Fifo);
        assert_eq!(r.makespan, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = schedule_fifo(0, &tasks(&[1.0]), TaskOrdering::Fifo);
    }

    fn single_attempt(durations: &[f64]) -> Vec<RetryTask> {
        durations
            .iter()
            .enumerate()
            .map(|(i, &d)| RetryTask {
                id: i as u64,
                attempt_durations: vec![d],
            })
            .collect()
    }

    #[test]
    fn retry_scheduler_reduces_to_fifo_without_retries() {
        let durations = [3.0, 2.0, 5.0, 1.0, 4.0, 2.5];
        let plain = schedule_fifo(2, &tasks(&durations), TaskOrdering::Fifo);
        let retry = schedule_fifo_retry(2, &single_attempt(&durations), &RetryPolicy::default());
        assert_eq!(plain.assignments, retry.assignments);
        assert_eq!(plain.makespan, retry.makespan);
        assert_eq!(plain.gpu_busy, retry.gpu_busy);
    }

    #[test]
    fn failed_attempts_occupy_the_gpu_and_requeue_after_backoff() {
        // One task, first attempt fails after 2 s, retry takes 3 s; the
        // backoff between the attempts keeps the GPU idle.
        let t = vec![RetryTask {
            id: 7,
            attempt_durations: vec![2.0, 3.0],
        }];
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff_base_s: 1.5,
            backoff_factor: 2.0,
        };
        let r = schedule_fifo_retry(1, &t, &policy);
        assert_eq!(r.assignments.len(), 2);
        assert_eq!(r.assignments[0].end, 2.0);
        // Retry eligible at 2.0 + 1.5.
        assert_eq!(r.assignments[1].start, 3.5);
        assert_eq!(r.makespan, 6.5);
        assert_eq!(r.gpu_busy[0], 5.0);
    }

    #[test]
    fn other_tasks_fill_in_during_a_backoff() {
        // Task 0 fails fast; task 1 runs while task 0 backs off.
        let t = vec![
            RetryTask {
                id: 0,
                attempt_durations: vec![1.0, 1.0],
            },
            RetryTask {
                id: 1,
                attempt_durations: vec![4.0],
            },
        ];
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff_base_s: 0.5,
            backoff_factor: 2.0,
        };
        let r = schedule_fifo_retry(1, &t, &policy);
        // Dispatch order: task 0 attempt 1, task 1, task 0 attempt 2.
        assert_eq!(r.assignments[1].task_id, 1);
        assert_eq!(r.assignments[1].start, 1.0);
        assert_eq!(r.assignments[2].task_id, 0);
        assert_eq!(r.assignments[2].start, 5.0);
    }

    #[test]
    fn final_attempt_is_last_assignment_per_task() {
        let t = vec![
            RetryTask {
                id: 0,
                attempt_durations: vec![2.0, 2.0, 2.0],
            },
            RetryTask {
                id: 1,
                attempt_durations: vec![3.0],
            },
        ];
        let r = schedule_fifo_retry(2, &t, &RetryPolicy::default());
        let finals: Vec<&Assignment> = t
            .iter()
            .map(|task| {
                r.assignments
                    .iter()
                    .rev()
                    .find(|a| a.task_id == task.id)
                    .unwrap()
            })
            .collect();
        // Attempts of a task never overlap and the final one ends last.
        for (task, fin) in t.iter().zip(&finals) {
            for a in r.assignments.iter().filter(|a| a.task_id == task.id) {
                assert!(a.end <= fin.end);
            }
        }
        assert_eq!(r.assignments.len(), 4);
    }

    #[test]
    fn retry_busy_time_includes_wasted_attempts() {
        let t = vec![RetryTask {
            id: 0,
            attempt_durations: vec![5.0, 5.0],
        }];
        let r = schedule_fifo_retry(2, &t, &RetryPolicy::default());
        assert_eq!(r.gpu_busy.iter().sum::<f64>(), 10.0);
    }
}
