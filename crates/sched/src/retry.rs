//! Per-job retry policy shared by the thread-pool executor and the
//! discrete-event simulator.
//!
//! A failed attempt (a panicking job) is requeued onto the FIFO ready
//! queue after an exponential backoff. The pool waits out the backoff in
//! real time; the DES advances simulated time by the same amount, so both
//! resource managers agree on the policy's semantics.

use serde::{Deserialize, Serialize};

/// How many times a job may run and how long to wait between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per job, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied per additional failed attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    /// Three attempts with a 10 ms base backoff doubling per failure —
    /// small enough that retries are invisible on the happy path, large
    /// enough that the backoff ordering is observable in tests.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 0.01,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every job gets exactly one attempt.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A policy allowing `retries` retries (so `retries + 1` attempts).
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1).max(1),
            ..RetryPolicy::default()
        }
    }

    /// Backoff in seconds before attempt `attempt + 1`, given that
    /// attempt `attempt` (1-based) just failed.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(attempt.saturating_sub(1) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
        };
        assert_eq!(p.backoff_s(1), 1.0);
        assert_eq!(p.backoff_s(2), 2.0);
        assert_eq!(p.backoff_s(3), 4.0);
    }

    #[test]
    fn no_retry_allows_one_attempt() {
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
        assert_eq!(RetryPolicy::with_retries(0).max_attempts, 1);
        assert_eq!(RetryPolicy::with_retries(2).max_attempts, 3);
    }
}
