//! A real FIFO executor mapping virtual GPUs onto worker threads.
//!
//! The A4NN workflow uses this when it actually trains networks with the
//! CPU substrate: each worker thread plays the role of one GPU, draining a
//! shared FIFO queue of jobs — the same dynamic policy the discrete-event
//! simulator models. Results are returned in submission order together
//! with the worker that ran each job and its measured wall time.
//!
//! Jobs run under [`std::panic::catch_unwind`]: a panicking job yields a
//! [`JobStatus::Failed`] report instead of poisoning the batch, and
//! [`GpuPool::run_batch_retry`] requeues failed jobs onto the next free
//! virtual GPU after an exponential backoff, up to a
//! [`RetryPolicy`]-bounded attempt count.

use crate::retry::RetryPolicy;
use a4nn_error::A4nnError;
use crossbeam::channel;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Intra-op thread budget for each of `workers` concurrent jobs: the
/// machine's cores divided evenly among the virtual GPUs, at least 1.
/// The workflow hands this to the NN substrate's GEMM kernels so
/// inter-model parallelism (this pool) and intra-model parallelism
/// (blocked GEMM) share the cores instead of oversubscribing them.
pub fn intra_op_threads(workers: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (cores / workers.max(1)).max(1)
}

/// Terminal state of one job in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The job returned a value.
    Completed,
    /// Every allowed attempt panicked; `error` is the last panic message.
    Failed {
        /// Panic payload of the final attempt, best-effort stringified.
        error: String,
    },
}

impl JobStatus {
    /// Whether the job completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed)
    }
}

/// Execution record for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Worker ("GPU") that executed its final attempt.
    pub worker: usize,
    /// Measured wall seconds summed over every attempt.
    pub seconds: f64,
    /// Attempts consumed (1 = no retries needed).
    pub attempts: u32,
    /// Whether the job ultimately completed or failed.
    pub status: JobStatus,
}

/// One attempt of one job, in dispatch order.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Worker that ran the attempt.
    pub worker: usize,
    /// Measured wall seconds of this attempt.
    pub seconds: f64,
    /// Whether the attempt panicked.
    pub failed: bool,
}

/// Everything [`GpuPool::run_batch_retry`] produces for one batch.
#[derive(Debug)]
pub struct RetryBatch<T> {
    /// Job outputs in submission order; `None` where every attempt failed.
    pub outputs: Vec<Option<T>>,
    /// Final per-job reports, in submission order.
    pub reports: Vec<JobReport>,
    /// Every attempt that ran, in completion order.
    pub attempts: Vec<AttemptRecord>,
    /// Measured busy seconds per worker (sums to total attempt seconds).
    pub worker_busy_s: Vec<f64>,
}

/// A fixed-size pool of worker threads with FIFO job dispatch.
#[derive(Debug)]
pub struct GpuPool {
    workers: usize,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// Per-job result slot: the output (`None` if the job panicked) plus its
/// report, filled in by whichever worker ran the job.
type JobSlot<T> = Option<(Option<T>, JobReport)>;

/// One queue entry: a job attempt that becomes runnable at `not_before`.
struct Pending {
    job: usize,
    attempt: u32,
    not_before: Instant,
}

impl GpuPool {
    /// Create a pool that will use `workers` threads per batch.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        GpuPool { workers }
    }

    /// Number of virtual GPUs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every job once, FIFO, across the pool. Returns the job
    /// outputs in submission order (`None` for panicked jobs) plus
    /// per-job execution reports — a panicking job is reported as
    /// [`JobStatus::Failed`] and never loses the rest of the batch.
    ///
    /// Jobs receive the worker index so trainers can tag lineage records
    /// with their virtual GPU. Errs only when the pool's own machinery
    /// breaks (a worker thread dies outside a job's `catch_unwind`) —
    /// job panics are data, not errors.
    pub fn run_batch<T, F>(
        &self,
        jobs: Vec<F>,
    ) -> Result<(Vec<Option<T>>, Vec<JobReport>), A4nnError>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        let n = jobs.len();
        let (job_tx, job_rx) = channel::unbounded::<(usize, F)>();
        for (i, job) in jobs.into_iter().enumerate() {
            job_tx
                .send((i, job))
                .map_err(|_| A4nnError::Internal("job queue closed before dispatch".into()))?;
        }
        drop(job_tx);

        let results: Mutex<Vec<JobSlot<T>>> = Mutex::new((0..n).map(|_| None).collect());

        crossbeam::thread::scope(|scope| {
            for worker in 0..self.workers {
                let job_rx = job_rx.clone();
                let results = &results;
                scope.spawn(move |_| {
                    while let Ok((i, job)) = job_rx.recv() {
                        let t0 = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(|| job(worker)));
                        let seconds = t0.elapsed().as_secs_f64();
                        let (out, status) = match outcome {
                            Ok(v) => (Some(v), JobStatus::Completed),
                            Err(payload) => (
                                None,
                                JobStatus::Failed {
                                    error: panic_message(payload.as_ref()),
                                },
                            ),
                        };
                        let report = JobReport {
                            job: i,
                            worker,
                            seconds,
                            attempts: 1,
                            status,
                        };
                        results.lock()[i] = Some((out, report));
                    }
                });
            }
        })
        .map_err(|_| A4nnError::Internal("pool worker thread panicked".into()))?;

        let mut outs = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for slot in results.into_inner() {
            let (out, report) =
                slot.ok_or_else(|| A4nnError::Internal("pool worker dropped a job slot".into()))?;
            outs.push(out);
            reports.push(report);
        }
        Ok((outs, reports))
    }

    /// Run every job FIFO with per-job retries: an attempt that panics is
    /// requeued at the back of the ready queue, eligible again after the
    /// policy's exponential backoff, and picked up by whichever virtual
    /// GPU frees up first. Jobs that exhaust `policy.max_attempts`
    /// attempts are reported as [`JobStatus::Failed`].
    ///
    /// Jobs receive `(worker, attempt)` so trainers can key per-attempt
    /// behaviour (attempt is 1-based). As with [`run_batch`](Self::run_batch),
    /// an `Err` means the pool itself broke; exhausted jobs come back as
    /// `None` outputs with [`JobStatus::Failed`] reports.
    pub fn run_batch_retry<T, F>(
        &self,
        jobs: Vec<F>,
        policy: &RetryPolicy,
    ) -> Result<RetryBatch<T>, A4nnError>
    where
        T: Send,
        F: Fn(usize, u32) -> T + Send + Sync,
    {
        let n = jobs.len();
        let max_attempts = policy.max_attempts.max(1);
        let now = Instant::now();
        let queue: Mutex<VecDeque<Pending>> = Mutex::new(
            (0..n)
                .map(|job| Pending {
                    job,
                    attempt: 1,
                    not_before: now,
                })
                .collect(),
        );
        // Jobs not yet terminally resolved; workers exit when it hits 0.
        let outstanding = Mutex::new(n);
        let ready = Condvar::new();
        let outputs: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        let reports: Mutex<Vec<Option<JobReport>>> = Mutex::new((0..n).map(|_| None).collect());
        let attempts_log: Mutex<Vec<AttemptRecord>> = Mutex::new(Vec::new());
        let busy: Mutex<Vec<f64>> = Mutex::new(vec![0.0; self.workers]);
        // Wall seconds accumulated per job across attempts.
        let job_seconds: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n]);
        let jobs = &jobs;

        crossbeam::thread::scope(|scope| {
            for worker in 0..self.workers {
                let queue = &queue;
                let outstanding = &outstanding;
                let ready = &ready;
                let outputs = &outputs;
                let reports = &reports;
                let attempts_log = &attempts_log;
                let busy = &busy;
                let job_seconds = &job_seconds;
                scope.spawn(move |_| loop {
                    let pending = {
                        let mut q = queue.lock();
                        loop {
                            if *outstanding.lock() == 0 {
                                return;
                            }
                            let now = Instant::now();
                            // FIFO among eligible entries.
                            if let Some(pos) = q.iter().position(|p| p.not_before <= now) {
                                let Some(p) = q.remove(pos) else {
                                    unreachable!("position from iter::position is in bounds")
                                };
                                break p;
                            }
                            match q.iter().map(|p| p.not_before).min() {
                                // Backoffs pending: sleep until the
                                // earliest becomes eligible.
                                Some(wake) => {
                                    ready.wait_for(&mut q, wake.saturating_duration_since(now));
                                }
                                // Queue empty: wait for a requeue or for
                                // the batch to finish.
                                None => {
                                    ready.wait_for(&mut q, Duration::from_millis(50));
                                }
                            }
                        }
                    };
                    let t0 = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        jobs[pending.job](worker, pending.attempt)
                    }));
                    let seconds = t0.elapsed().as_secs_f64();
                    busy.lock()[worker] += seconds;
                    job_seconds.lock()[pending.job] += seconds;
                    attempts_log.lock().push(AttemptRecord {
                        job: pending.job,
                        attempt: pending.attempt,
                        worker,
                        seconds,
                        failed: outcome.is_err(),
                    });
                    match outcome {
                        Ok(v) => {
                            outputs.lock()[pending.job] = Some(v);
                            reports.lock()[pending.job] = Some(JobReport {
                                job: pending.job,
                                worker,
                                seconds: job_seconds.lock()[pending.job],
                                attempts: pending.attempt,
                                status: JobStatus::Completed,
                            });
                            *outstanding.lock() -= 1;
                            ready.notify_all();
                        }
                        Err(payload) if pending.attempt < max_attempts => {
                            let backoff = policy.backoff_s(pending.attempt).max(0.0);
                            drop(payload);
                            queue.lock().push_back(Pending {
                                job: pending.job,
                                attempt: pending.attempt + 1,
                                not_before: Instant::now() + Duration::from_secs_f64(backoff),
                            });
                            ready.notify_all();
                        }
                        Err(payload) => {
                            reports.lock()[pending.job] = Some(JobReport {
                                job: pending.job,
                                worker,
                                seconds: job_seconds.lock()[pending.job],
                                attempts: pending.attempt,
                                status: JobStatus::Failed {
                                    error: panic_message(payload.as_ref()),
                                },
                            });
                            *outstanding.lock() -= 1;
                            ready.notify_all();
                        }
                    }
                });
            }
        })
        .map_err(|_| A4nnError::Internal("pool worker thread panicked".into()))?;

        let reports = reports
            .into_inner()
            .into_iter()
            .map(|r| {
                r.ok_or_else(|| A4nnError::Internal("pool worker dropped a job report".into()))
            })
            .collect::<Result<Vec<_>, A4nnError>>()?;
        Ok(RetryBatch {
            outputs: outputs.into_inner(),
            reports,
            attempts: attempts_log.into_inner(),
            worker_busy_s: busy.into_inner(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    #[test]
    fn intra_op_budget_divides_cores_and_never_hits_zero() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(intra_op_threads(1), cores);
        assert_eq!(intra_op_threads(0), cores); // degenerate: treated as 1 worker
        assert_eq!(intra_op_threads(cores * 2), 1);
        for w in 1..=cores {
            assert!(intra_op_threads(w) * w <= cores, "oversubscribed at {w}");
        }
    }

    #[test]
    fn results_preserve_submission_order() {
        let pool = GpuPool::new(4);
        let jobs: Vec<_> = (0..16).map(|i| move |_w: usize| i * 10).collect();
        let (outs, reports) = pool.run_batch(jobs).unwrap();
        assert_eq!(outs, (0..16).map(|i| Some(i * 10)).collect::<Vec<_>>());
        assert_eq!(reports.len(), 16);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.job, i);
            assert!(r.worker < 4);
            assert_eq!(r.status, JobStatus::Completed);
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn all_workers_participate_under_load() {
        let pool = GpuPool::new(3);
        let jobs: Vec<_> = (0..24)
            .map(|_| {
                move |_w: usize| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            })
            .collect();
        let (_, reports) = pool.run_batch(jobs).unwrap();
        let mut seen = [false; 3];
        for r in reports {
            seen[r.worker] = true;
        }
        assert!(seen.iter().all(|&s| s), "workers {seen:?}");
    }

    #[test]
    fn concurrency_is_bounded_by_pool_size() {
        let pool = GpuPool::new(2);
        static ACTIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..12)
            .map(|_| {
                move |_w: usize| {
                    let now = ACTIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    ACTIVE.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        let _ = pool.run_batch(jobs).unwrap();
        assert!(PEAK.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = GpuPool::new(2);
        let (outs, reports) = pool.run_batch(Vec::<fn(usize) -> ()>::new()).unwrap();
        assert!(outs.is_empty() && reports.is_empty());
    }

    #[test]
    fn parallel_pool_is_faster_than_serial_for_sleep_jobs() {
        let mk_jobs = || {
            (0..8)
                .map(|_| {
                    move |_w: usize| {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                })
                .collect::<Vec<_>>()
        };
        let t0 = Instant::now();
        GpuPool::new(1).run_batch(mk_jobs()).unwrap();
        let serial = t0.elapsed();
        let t1 = Instant::now();
        GpuPool::new(4).run_batch(mk_jobs()).unwrap();
        let parallel = t1.elapsed();
        assert!(
            parallel < serial,
            "parallel {parallel:?} should beat serial {serial:?}"
        );
    }

    #[test]
    fn panicking_job_reports_failed_without_losing_the_batch() {
        // Regression: a panic used to unwind the whole scope and lose
        // every result; now it must yield one Failed report.
        let pool = GpuPool::new(2);
        let jobs: Vec<Box<dyn FnOnce(usize) -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move |_w: usize| {
                    if i == 3 {
                        panic!("injected failure in job 3");
                    }
                    i * 2
                }) as Box<dyn FnOnce(usize) -> usize + Send>
            })
            .collect();
        let (outs, reports) = pool.run_batch(jobs).unwrap();
        for i in 0..6 {
            if i == 3 {
                assert_eq!(outs[i], None);
                let JobStatus::Failed { error } = &reports[i].status else {
                    panic!("job 3 should be Failed");
                };
                assert!(error.contains("injected failure"));
            } else {
                assert_eq!(outs[i], Some(i * 2));
                assert_eq!(reports[i].status, JobStatus::Completed);
            }
        }
    }

    #[test]
    fn retry_recovers_transient_failures() {
        let pool = GpuPool::new(2);
        let counters: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let counters = &counters;
        // Jobs 2 and 5 fail on their first attempt only.
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                move |_w: usize, attempt: u32| {
                    counters[i].fetch_add(1, Ordering::SeqCst);
                    if (i == 2 || i == 5) && attempt == 1 {
                        panic!("transient fault");
                    }
                    i
                }
            })
            .collect();
        let batch = pool
            .run_batch_retry(
                jobs,
                &RetryPolicy {
                    max_attempts: 3,
                    backoff_base_s: 0.001,
                    backoff_factor: 2.0,
                },
            )
            .unwrap();
        for (i, counter) in counters.iter().enumerate() {
            assert_eq!(batch.outputs[i], Some(i));
            assert_eq!(batch.reports[i].status, JobStatus::Completed);
            let expected = if i == 2 || i == 5 { 2 } else { 1 };
            assert_eq!(batch.reports[i].attempts, expected);
            assert_eq!(counter.load(Ordering::SeqCst), expected);
        }
        let total_attempts: usize = batch.attempts.len();
        assert_eq!(total_attempts, 10);
    }

    #[test]
    fn exhausted_retries_yield_failed_report() {
        let pool = GpuPool::new(2);
        let jobs: Vec<_> = (0..4)
            .map(|i| {
                move |_w: usize, _attempt: u32| {
                    if i == 1 {
                        panic!("permanent fault");
                    }
                    i
                }
            })
            .collect();
        let batch = pool
            .run_batch_retry(
                jobs,
                &RetryPolicy {
                    max_attempts: 3,
                    backoff_base_s: 0.001,
                    backoff_factor: 2.0,
                },
            )
            .unwrap();
        assert_eq!(batch.outputs[1], None);
        assert_eq!(batch.reports[1].attempts, 3);
        assert!(matches!(batch.reports[1].status, JobStatus::Failed { .. }));
        for i in [0usize, 2, 3] {
            assert_eq!(batch.outputs[i], Some(i));
        }
        // Three failed attempts logged for job 1.
        assert_eq!(
            batch
                .attempts
                .iter()
                .filter(|a| a.job == 1 && a.failed)
                .count(),
            3
        );
    }

    #[test]
    fn busy_accounting_sums_to_attempt_seconds() {
        let pool = GpuPool::new(3);
        let jobs: Vec<_> = (0..9)
            .map(|i| {
                move |_w: usize, attempt: u32| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    if i == 4 && attempt == 1 {
                        panic!("one transient");
                    }
                }
            })
            .collect();
        let batch = pool.run_batch_retry(jobs, &RetryPolicy::default()).unwrap();
        let attempt_total: f64 = batch.attempts.iter().map(|a| a.seconds).sum();
        let busy_total: f64 = batch.worker_busy_s.iter().sum();
        assert!((attempt_total - busy_total).abs() < 1e-9);
        let report_total: f64 = batch.reports.iter().map(|r| r.seconds).sum();
        assert!((attempt_total - report_total).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = GpuPool::new(0);
    }
}
