//! A real FIFO executor mapping virtual GPUs onto worker threads.
//!
//! The A4NN workflow uses this when it actually trains networks with the
//! CPU substrate: each worker thread plays the role of one GPU, draining a
//! shared FIFO queue of jobs — the same dynamic policy the discrete-event
//! simulator models. Results are returned in submission order together
//! with the worker that ran each job and its measured wall time.

use crossbeam::channel;
use parking_lot::Mutex;
use std::time::Instant;

/// Execution record for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobReport {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Worker ("GPU") that executed it.
    pub worker: usize,
    /// Measured wall seconds.
    pub seconds: f64,
}

/// A fixed-size pool of worker threads with FIFO job dispatch.
#[derive(Debug)]
pub struct GpuPool {
    workers: usize,
}

impl GpuPool {
    /// Create a pool that will use `workers` threads per batch.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        GpuPool { workers }
    }

    /// Number of virtual GPUs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every job, FIFO, across the pool. Returns the job outputs in
    /// submission order plus per-job execution reports.
    ///
    /// Jobs receive the worker index so trainers can tag lineage records
    /// with their virtual GPU.
    pub fn run_batch<T, F>(&self, jobs: Vec<F>) -> (Vec<T>, Vec<JobReport>)
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        let n = jobs.len();
        let (job_tx, job_rx) = channel::unbounded::<(usize, F)>();
        for (i, job) in jobs.into_iter().enumerate() {
            job_tx.send((i, job)).expect("queue open");
        }
        drop(job_tx);

        let results: Mutex<Vec<Option<(T, JobReport)>>> =
            Mutex::new((0..n).map(|_| None).collect());

        crossbeam::thread::scope(|scope| {
            for worker in 0..self.workers {
                let job_rx = job_rx.clone();
                let results = &results;
                scope.spawn(move |_| {
                    while let Ok((i, job)) = job_rx.recv() {
                        let t0 = Instant::now();
                        let out = job(worker);
                        let report = JobReport {
                            job: i,
                            worker,
                            seconds: t0.elapsed().as_secs_f64(),
                        };
                        results.lock()[i] = Some((out, report));
                    }
                });
            }
        })
        .expect("worker panicked");

        let mut outs = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for slot in results.into_inner() {
            let (out, report) = slot.expect("every job completes");
            outs.push(out);
            reports.push(report);
        }
        (outs, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_submission_order() {
        let pool = GpuPool::new(4);
        let jobs: Vec<_> = (0..16).map(|i| move |_w: usize| i * 10).collect();
        let (outs, reports) = pool.run_batch(jobs);
        assert_eq!(outs, (0..16).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(reports.len(), 16);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.job, i);
            assert!(r.worker < 4);
        }
    }

    #[test]
    fn all_workers_participate_under_load() {
        let pool = GpuPool::new(3);
        let jobs: Vec<_> = (0..24)
            .map(|_| {
                move |_w: usize| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            })
            .collect();
        let (_, reports) = pool.run_batch(jobs);
        let mut seen = [false; 3];
        for r in reports {
            seen[r.worker] = true;
        }
        assert!(seen.iter().all(|&s| s), "workers {seen:?}");
    }

    #[test]
    fn concurrency_is_bounded_by_pool_size() {
        let pool = GpuPool::new(2);
        static ACTIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..12)
            .map(|_| {
                move |_w: usize| {
                    let now = ACTIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    ACTIVE.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        let _ = pool.run_batch(jobs);
        assert!(PEAK.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = GpuPool::new(2);
        let (outs, reports) = pool.run_batch(Vec::<fn(usize) -> ()>::new());
        assert!(outs.is_empty() && reports.is_empty());
    }

    #[test]
    fn parallel_pool_is_faster_than_serial_for_sleep_jobs() {
        let mk_jobs = || {
            (0..8)
                .map(|_| {
                    move |_w: usize| {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                })
                .collect::<Vec<_>>()
        };
        let t0 = Instant::now();
        GpuPool::new(1).run_batch(mk_jobs());
        let serial = t0.elapsed();
        let t1 = Instant::now();
        GpuPool::new(4).run_batch(mk_jobs());
        let parallel = t1.elapsed();
        assert!(
            parallel < serial,
            "parallel {parallel:?} should beat serial {serial:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = GpuPool::new(0);
    }
}
