//! Chrome-trace export of cluster schedules.
//!
//! Serializes a [`GenerationSchedule`] into
//! the Chrome Trace Event JSON format (`chrome://tracing`, Perfetto), one
//! lane per GPU, one complete event per model-training task — the visual
//! the paper's Figure-9-style wall-time analysis is usually debugged with.

use crate::des::GenerationSchedule;
use a4nn_error::A4nnError;
use serde::Serialize;

#[derive(Serialize)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    /// Microseconds since trace origin.
    ts: u64,
    /// Duration in microseconds.
    dur: u64,
    pid: u32,
    tid: u32,
}

/// Render the schedule as a Chrome Trace Event JSON array. Generations are
/// laid out back to back (barrier semantics); `pid` 1 is the cluster, each
/// GPU is a `tid` lane, and task ids become event names.
pub fn chrome_trace(schedule: &GenerationSchedule) -> Result<String, A4nnError> {
    let mut events = Vec::new();
    let mut origin = 0.0f64;
    for (g, generation) in schedule.generations.iter().enumerate() {
        for a in &generation.assignments {
            events.push(TraceEvent {
                name: format!("model {} (gen {g})", a.task_id),
                cat: "training",
                ph: "X",
                ts: ((origin + a.start) * 1e6) as u64,
                dur: ((a.end - a.start) * 1e6) as u64,
                pid: 1,
                tid: a.gpu as u32,
            });
        }
        origin += generation.makespan;
    }
    serde_json::to_string_pretty(&events)
        .map_err(|e| A4nnError::Internal(format!("trace serialization failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{schedule_generations, Task, TaskOrdering};

    fn sample() -> GenerationSchedule {
        let gens = vec![
            vec![
                Task {
                    id: 0,
                    duration: 2.0,
                },
                Task {
                    id: 1,
                    duration: 1.0,
                },
                Task {
                    id: 2,
                    duration: 1.5,
                },
            ],
            vec![Task {
                id: 3,
                duration: 0.5,
            }],
        ];
        schedule_generations(2, &gens, TaskOrdering::Fifo)
    }

    #[test]
    fn trace_is_valid_json_with_all_tasks() {
        let json = chrome_trace(&sample()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e["ph"], "X");
            assert!(e["dur"].as_u64().unwrap() > 0);
            assert!(e["tid"].as_u64().unwrap() < 2);
        }
    }

    #[test]
    fn second_generation_starts_after_first_barrier() {
        let schedule = sample();
        let json = chrome_trace(&schedule).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let gen0_makespan_us = (schedule.generations[0].makespan * 1e6) as u64;
        let model3 = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"].as_str().unwrap().starts_with("model 3"))
            .unwrap();
        assert!(model3["ts"].as_u64().unwrap() >= gen0_makespan_us);
    }

    #[test]
    fn empty_schedule_is_empty_array() {
        let empty = GenerationSchedule {
            generations: vec![],
        };
        let parsed: serde_json::Value =
            serde_json::from_str(&chrome_trace(&empty).unwrap()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }
}
