//! The retry ledger: a serializable account of every model's attempt
//! consumption, carried inside the search-state snapshot so a resumed
//! run reports the same retry totals as an uninterrupted one.
//!
//! The pool's [`AttemptRecord`](crate::pool::AttemptRecord)s are live
//! wall-time diagnostics and die with the process; the ledger is the
//! durable summary — per model: generation, attempts consumed, and
//! whether the model ultimately failed. It is exact integer data, so
//! merging ledgers from before and after an interruption is trivially
//! lossless.

use serde::{Deserialize, Serialize};

/// One model's attempt accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryEntry {
    /// The model the attempts belong to.
    pub model_id: u64,
    /// Generation the model was evaluated in.
    pub generation: usize,
    /// Attempts consumed (1 = clean first attempt).
    pub attempts: u32,
    /// Whether the model exhausted its budget and failed terminally.
    pub failed: bool,
}

impl RetryEntry {
    /// Extra attempts beyond the first.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// The durable per-run retry account, ordered by model id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryLedger {
    /// One entry per evaluated model, in evaluation (model-id) order.
    pub entries: Vec<RetryEntry>,
}

impl RetryLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one model's accounting.
    pub fn push(&mut self, entry: RetryEntry) {
        self.entries.push(entry);
    }

    /// Number of models accounted for.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total retries (attempts beyond the first) across all models.
    pub fn total_retries(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.retries())).sum()
    }

    /// Models that failed terminally.
    pub fn models_failed(&self) -> u64 {
        self.entries.iter().filter(|e| e.failed).count() as u64
    }

    /// Models that needed at least one retry but completed.
    pub fn models_recovered(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.attempts > 1 && !e.failed)
            .count() as u64
    }

    /// Append every entry of `other` (the resume path: the prior run's
    /// ledger continues with the post-resume generations).
    pub fn merge(&mut self, other: &RetryLedger) {
        self.entries.extend(other.entries.iter().copied());
    }

    /// The CSV header matching [`to_csv`](Self::to_csv).
    pub const CSV_HEADER: &'static str = "model_id,generation,attempts,failed";

    /// One row per model, loadable beside the commons CSVs.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                e.model_id, e.generation, e.attempts, e.failed
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(model_id: u64, attempts: u32, failed: bool) -> RetryEntry {
        RetryEntry {
            model_id,
            generation: 0,
            attempts,
            failed,
        }
    }

    #[test]
    fn totals_account_retries_failures_and_recoveries() {
        let mut ledger = RetryLedger::new();
        ledger.push(entry(0, 1, false));
        ledger.push(entry(1, 3, false));
        ledger.push(entry(2, 4, true));
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.total_retries(), 2 + 3);
        assert_eq!(ledger.models_failed(), 1);
        assert_eq!(ledger.models_recovered(), 1);
    }

    #[test]
    fn merge_concatenates_in_order() {
        let mut a = RetryLedger::new();
        a.push(entry(0, 1, false));
        let mut b = RetryLedger::new();
        b.push(entry(1, 2, false));
        a.merge(&b);
        let ids: Vec<u64> = a.entries.iter().map(|e| e.model_id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(a.total_retries(), 1);
    }

    #[test]
    fn csv_shape() {
        let mut ledger = RetryLedger::new();
        ledger.push(entry(7, 2, true));
        let csv = ledger.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(RetryLedger::CSV_HEADER));
        assert_eq!(lines.next(), Some("7,0,2,true"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let mut ledger = RetryLedger::new();
        ledger.push(entry(1, 2, false));
        ledger.push(entry(2, 1, false));
        let json = serde_json::to_vec(&ledger).unwrap();
        let back: RetryLedger = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, ledger);
    }
}
