//! # a4nn-xfel — synthetic XFEL protein-diffraction dataset
//!
//! The paper's use case classifies two conformations of the EF2 protein
//! (PDB 1n0u / 1n0v) from diffraction patterns produced by *spsim* with
//! beam orientations from *Xmipp* (§3.1). Those simulators and the PDB
//! structures are not available here, so this crate implements the closest
//! synthetic equivalent that preserves the behaviour the workflow is
//! evaluated on:
//!
//! - two rigid **conformers** that differ by a domain rotation around a
//!   single hinge — the physical meaning of a protein conformational
//!   change ([`conformer`]),
//! - uniformly random **beam orientations** via quaternion-sampled
//!   rotation matrices ([`geometry`]),
//! - far-field **diffraction intensities** `I(q) = |Σⱼ exp(i q·rⱼ)|²` on a
//!   square detector ([`diffraction`]),
//! - **Poisson photon noise** whose scale is set by the beam intensity:
//!   the paper's low/medium/high intensities (1e14/1e15/1e16
//!   photons/μm²/pulse) map to mean photon budgets such that low intensity
//!   ⇒ high relative noise, exactly the proxy relationship §3.1 describes
//!   ([`beam`]),
//! - balanced, seeded **dataset generation** with the paper's 80/20
//!   train/test split ([`dataset`]).

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod beam;
pub mod conformer;
pub mod dataset;
pub mod diffraction;
pub mod geometry;
pub mod multiclass;

pub use beam::BeamIntensity;
pub use conformer::{Conformer, ConformerPair};
pub use dataset::{generate_dataset, generate_split, XfelConfig};
pub use diffraction::{diffraction_intensity, render_pattern};
pub use geometry::{random_rotation, Rotation};
pub use multiclass::{generate_multiclass_dataset, ProteinLibrary};
