//! Beam intensities and their photon budgets.

use serde::{Deserialize, Serialize};

/// XFEL beam intensity, §3.1: the intensity sets the photon flux and thus
/// the signal-to-noise ratio of the recorded diffraction pattern — low
/// intensity is the paper's proxy for high noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeamIntensity {
    /// 1×10¹⁴ photons/μm²/pulse — noisy patterns.
    Low,
    /// 1×10¹⁵ photons/μm²/pulse.
    Medium,
    /// 1×10¹⁶ photons/μm²/pulse — near-noiseless patterns.
    High,
}

impl BeamIntensity {
    /// All intensities in the paper's reporting order.
    pub const ALL: [BeamIntensity; 3] = [
        BeamIntensity::Low,
        BeamIntensity::Medium,
        BeamIntensity::High,
    ];

    /// Nominal flux in photons/μm²/pulse (§3.1).
    pub fn photons_per_um2(&self) -> f64 {
        match self {
            BeamIntensity::Low => 1e14,
            BeamIntensity::Medium => 1e15,
            BeamIntensity::High => 1e16,
        }
    }

    /// Mean photon count landing on the detector per image. The absolute
    /// scale is a calibration choice; the decade ratios between levels
    /// mirror the nominal fluxes, which is what controls relative Poisson
    /// noise (`SNR ∝ √photons`).
    pub fn photon_budget(&self) -> f64 {
        match self {
            BeamIntensity::Low => 2.0e3,
            BeamIntensity::Medium => 2.0e4,
            BeamIntensity::High => 2.0e5,
        }
    }

    /// Display label used by the benchmark harnesses.
    pub fn label(&self) -> &'static str {
        match self {
            BeamIntensity::Low => "low",
            BeamIntensity::Medium => "medium",
            BeamIntensity::High => "high",
        }
    }
}

impl std::fmt::Display for BeamIntensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluxes_match_the_paper() {
        assert_eq!(BeamIntensity::Low.photons_per_um2(), 1e14);
        assert_eq!(BeamIntensity::Medium.photons_per_um2(), 1e15);
        assert_eq!(BeamIntensity::High.photons_per_um2(), 1e16);
    }

    #[test]
    fn budgets_scale_by_decades() {
        let [low, med, high] = BeamIntensity::ALL;
        assert!((med.photon_budget() / low.photon_budget() - 10.0).abs() < 1e-9);
        assert!((high.photon_budget() / med.photon_budget() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BeamIntensity::Low.to_string(), "low");
        assert_eq!(BeamIntensity::Medium.to_string(), "medium");
        assert_eq!(BeamIntensity::High.to_string(), "high");
    }
}
