//! 3-D rotations: uniform random orientations for the simulated beam and
//! hinge rotations for conformational changes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 3×3 rotation matrix (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rotation(pub [[f64; 3]; 3]);

impl Rotation {
    /// The identity rotation.
    pub fn identity() -> Self {
        Rotation([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Rotation by `angle_rad` around the (normalized) `axis`
    /// (Rodrigues' formula).
    pub fn around_axis(axis: [f64; 3], angle_rad: f64) -> Self {
        let norm = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
        assert!(norm > 1e-12, "axis must be nonzero");
        let (x, y, z) = (axis[0] / norm, axis[1] / norm, axis[2] / norm);
        let (s, c) = angle_rad.sin_cos();
        let t = 1.0 - c;
        Rotation([
            [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
            [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
            [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
        ])
    }

    /// Build from a unit quaternion `(w, x, y, z)`.
    pub fn from_quaternion(w: f64, x: f64, y: f64, z: f64) -> Self {
        let n = (w * w + x * x + y * y + z * z).sqrt();
        let (w, x, y, z) = (w / n, x / n, y / n, z / n);
        Rotation([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Apply to a point.
    #[inline]
    pub fn apply(&self, p: [f64; 3]) -> [f64; 3] {
        let m = &self.0;
        [
            m[0][0] * p[0] + m[0][1] * p[1] + m[0][2] * p[2],
            m[1][0] * p[0] + m[1][1] * p[1] + m[1][2] * p[2],
            m[2][0] * p[0] + m[2][1] * p[1] + m[2][2] * p[2],
        ]
    }

    /// Compose rotations: `(self ∘ other)(p) = self(other(p))`.
    pub fn compose(&self, other: &Rotation) -> Rotation {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.0[i][k] * other.0[k][j]).sum();
            }
        }
        Rotation(out)
    }

    /// Matrix determinant (≈ +1 for proper rotations).
    pub fn determinant(&self) -> f64 {
        let m = &self.0;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }
}

/// Sample a uniformly distributed random rotation (Shoemake's method:
/// uniform unit quaternions).
pub fn random_rotation<R: Rng + ?Sized>(rng: &mut R) -> Rotation {
    let u1: f64 = rng.gen_range(0.0..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let u3: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let a = (1.0 - u1).sqrt();
    let b = u1.sqrt();
    Rotation::from_quaternion(a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn assert_orthonormal(r: &Rotation) {
        // RᵀR = I and det = +1.
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|k| r.0[k][i] * r.0[k][j]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "RtR[{i}][{j}] = {dot}");
            }
        }
        assert!((r.determinant() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn identity_applies_trivially() {
        let p = [1.0, 2.0, 3.0];
        assert_eq!(Rotation::identity().apply(p), p);
    }

    #[test]
    fn axis_rotation_quarter_turn() {
        let r = Rotation::around_axis([0.0, 0.0, 1.0], std::f64::consts::FRAC_PI_2);
        let p = r.apply([1.0, 0.0, 0.0]);
        assert!((p[0]).abs() < 1e-12 && (p[1] - 1.0).abs() < 1e-12 && p[2].abs() < 1e-12);
    }

    #[test]
    fn axis_rotation_preserves_axis() {
        let axis = [1.0, 2.0, -0.5];
        let r = Rotation::around_axis(axis, 1.234);
        let p = r.apply(axis);
        for i in 0..3 {
            assert!((p[i] - axis[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn random_rotations_are_orthonormal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..64 {
            assert_orthonormal(&random_rotation(&mut rng));
        }
    }

    #[test]
    fn rotations_preserve_length() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = [3.0, -4.0, 12.0];
        let len = |q: [f64; 3]| (q[0] * q[0] + q[1] * q[1] + q[2] * q[2]).sqrt();
        for _ in 0..32 {
            let r = random_rotation(&mut rng);
            assert!((len(r.apply(p)) - len(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = random_rotation(&mut rng);
        let b = random_rotation(&mut rng);
        let p = [0.5, -1.5, 2.5];
        let composed = a.compose(&b).apply(p);
        let sequential = a.apply(b.apply(p));
        for i in 0..3 {
            assert!((composed[i] - sequential[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn random_rotation_axes_cover_the_sphere() {
        // The rotated z-axis should hit all octants over many samples.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut octants = [false; 8];
        for _ in 0..512 {
            let v = random_rotation(&mut rng).apply([0.0, 0.0, 1.0]);
            let idx = usize::from(v[0] > 0.0) << 2
                | usize::from(v[1] > 0.0) << 1
                | usize::from(v[2] > 0.0);
            octants[idx] = true;
        }
        assert!(octants.iter().all(|&b| b), "octant coverage {octants:?}");
    }
}
