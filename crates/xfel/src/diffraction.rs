//! Far-field diffraction simulation and photon-noise rendering.
//!
//! For a rigid set of point scatterers at positions `rⱼ` (after the beam
//! orientation rotation), the coherent far-field intensity at detector
//! momentum transfer `q` is `I(q) = |Σⱼ exp(i q·rⱼ)|²` — the physics that
//! makes each orientation of each conformer produce a unique fingerprint
//! (§3.1). The detector is a flat `D × D` grid in the small-angle
//! approximation (only the x/y components of the rotated positions enter
//! the phase). Photon counts per pixel are Poisson with mean proportional
//! to the intensity, scaled so the whole pattern receives the beam's
//! photon budget; images are `log1p`-compressed and max-normalized, the
//! standard preprocessing for diffraction data.

use crate::beam::BeamIntensity;
use crate::conformer::Conformer;
use crate::geometry::Rotation;
use rand::Rng;
use rand_distr::{Distribution, Poisson};

/// Compute the noiseless intensity pattern of `conformer` under beam
/// orientation `orientation` on a `detector × detector` grid.
///
/// `q_step` is the momentum-transfer increment per pixel; the detector is
/// centered on `q = 0`.
pub fn diffraction_intensity(
    conformer: &Conformer,
    orientation: &Rotation,
    detector: usize,
    q_step: f64,
) -> Vec<f64> {
    assert!(detector > 0, "detector must have pixels");
    let rotated: Vec<[f64; 3]> = conformer
        .atoms
        .iter()
        .map(|&a| orientation.apply(a))
        .collect();
    let half = (detector as f64 - 1.0) / 2.0;
    let mut out = vec![0.0f64; detector * detector];
    for py in 0..detector {
        let qy = (py as f64 - half) * q_step;
        for px in 0..detector {
            let qx = (px as f64 - half) * q_step;
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for r in &rotated {
                let phase = qx * r[0] + qy * r[1];
                let (s, c) = phase.sin_cos();
                re += c;
                im += s;
            }
            out[py * detector + px] = re * re + im * im;
        }
    }
    out
}

/// Render a noisy, normalized detector image from a noiseless intensity
/// pattern.
///
/// The intensity map is scaled so its total equals the beam's photon
/// budget, each pixel is Poisson-sampled, and the counts are
/// `log1p`-compressed and normalized to `[0, 1]`.
pub fn render_pattern<R: Rng + ?Sized>(
    intensity: &[f64],
    beam: BeamIntensity,
    rng: &mut R,
) -> Vec<f32> {
    let total: f64 = intensity.iter().sum();
    let scale = if total > 0.0 {
        beam.photon_budget() / total
    } else {
        0.0
    };
    let mut img: Vec<f32> = intensity
        .iter()
        .map(|&i| {
            let lambda = i * scale;
            let counts = sample_poisson(lambda, rng);
            (counts).ln_1p() as f32
        })
        .collect();
    let max = img.iter().cloned().fold(0.0f32, f32::max);
    if max > 0.0 {
        for v in &mut img {
            *v /= max;
        }
    }
    img
}

/// Poisson sample robust across the full λ range (rand_distr panics on
/// λ = 0 and loses precision for enormous λ, where the normal
/// approximation is exact for our purposes).
fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if lambda > 1e6 {
        // Normal approximation N(λ, λ).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        return (lambda + z * lambda.sqrt()).max(0.0);
    }
    // Poisson::new only rejects non-positive or non-finite lambda, both
    // excluded by the guards above.
    let Ok(dist) = Poisson::new(lambda) else {
        unreachable!("lambda {lambda} is positive and finite")
    };
    dist.sample(rng)
}

/// Zero out the detector pixels within `radius` pixels of the beam
/// center — the beamstop every real XFEL detector carries to block the
/// direct beam (whose intensity would otherwise saturate the detector).
/// A radius of 0 disables the mask.
pub fn apply_beamstop(intensity: &mut [f64], detector: usize, radius: f64) {
    if radius <= 0.0 {
        return;
    }
    let half = (detector as f64 - 1.0) / 2.0;
    let r2 = radius * radius;
    for py in 0..detector {
        for px in 0..detector {
            let dy = py as f64 - half;
            let dx = px as f64 - half;
            if dy * dy + dx * dx <= r2 {
                intensity[py * detector + px] = 0.0;
            }
        }
    }
}

/// Pearson correlation between two images — used to quantify the
/// signal-to-noise relationship in tests and benches.
pub fn correlation(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let mb = b.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = f64::from(x) - ma;
        let dy = f64::from(y) - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformer::{ConformerPair, ProteinParams};
    use crate::geometry::random_rotation;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn pair() -> ConformerPair {
        ConformerPair::generate(&ProteinParams::default(), 11)
    }

    #[test]
    fn central_pixel_carries_peak_intensity() {
        // At q = 0 all scatterers add in phase: I(0) = N².
        let p = pair();
        let det = 33; // odd so a pixel sits exactly at q = 0
        let img = diffraction_intensity(&p.conf_a, &Rotation::identity(), det, 0.25);
        // detector center: with half = det/2 = 16.5, pixel where q ≈ 0 is
        // index round(16.5) — search the max instead of hardcoding.
        let max = img.iter().cloned().fold(0.0, f64::max);
        let n = p.conf_a.atoms.len() as f64;
        assert!(
            (max - n * n).abs() / (n * n) < 0.05,
            "max {max} vs N² {}",
            n * n
        );
    }

    #[test]
    fn intensity_is_nonnegative() {
        let p = pair();
        let mut r = rng(1);
        let img = diffraction_intensity(&p.conf_b, &random_rotation(&mut r), 16, 0.3);
        assert!(img.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn conformers_produce_different_patterns_at_same_orientation() {
        let p = pair();
        let rot = Rotation::identity();
        let a = diffraction_intensity(&p.conf_a, &rot, 24, 0.3);
        let b = diffraction_intensity(&p.conf_b, &rot, 24, 0.3);
        let fa: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let fb: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let corr = correlation(&fa, &fb);
        assert!(corr < 0.995, "patterns too similar: corr {corr}");
    }

    #[test]
    fn higher_beam_intensity_means_higher_snr() {
        let p = pair();
        let clean = diffraction_intensity(&p.conf_a, &Rotation::identity(), 24, 0.3);
        let reference: Vec<f32> = {
            // Noise-free log image as ground truth.
            let max = clean.iter().cloned().fold(0.0, f64::max);
            clean
                .iter()
                .map(|&v| (v / max * 1e6).ln_1p() as f32)
                .collect()
        };
        let mut r = rng(2);
        let mut corr_for = |beam: BeamIntensity| {
            let mut acc = 0.0;
            for _ in 0..8 {
                let noisy = render_pattern(&clean, beam, &mut r);
                acc += correlation(&noisy, &reference);
            }
            acc / 8.0
        };
        let low = corr_for(BeamIntensity::Low);
        let med = corr_for(BeamIntensity::Medium);
        let high = corr_for(BeamIntensity::High);
        assert!(
            low < med && med < high,
            "SNR ordering violated: {low} {med} {high}"
        );
    }

    #[test]
    fn rendered_images_are_normalized() {
        let p = pair();
        let clean = diffraction_intensity(&p.conf_a, &Rotation::identity(), 16, 0.3);
        let img = render_pattern(&clean, BeamIntensity::Medium, &mut rng(3));
        assert_eq!(img.len(), 256);
        assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((img.iter().cloned().fold(0.0f32, f32::max) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_intensity_renders_black() {
        let img = render_pattern(&[0.0; 16], BeamIntensity::High, &mut rng(4));
        assert!(img.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sample_poisson_mean_tracks_lambda() {
        let mut r = rng(5);
        for &lambda in &[0.5, 20.0, 2e6] {
            let n = 3000;
            let mean: f64 = (0..n).map(|_| sample_poisson(lambda, &mut r)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.12,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(sample_poisson(0.0, &mut r), 0.0);
    }

    #[test]
    fn beamstop_blanks_the_center_only() {
        let p = pair();
        let det = 17;
        let mut img = diffraction_intensity(&p.conf_a, &Rotation::identity(), det, 0.1);
        let center_before = img[(det / 2) * det + det / 2];
        assert!(center_before > 0.0);
        apply_beamstop(&mut img, det, 2.0);
        // Center and its 4-neighborhood are blanked.
        assert_eq!(img[(det / 2) * det + det / 2], 0.0);
        assert_eq!(img[(det / 2) * det + det / 2 + 1], 0.0);
        // Corners untouched.
        assert!(img[0] >= 0.0);
        let blanked = img.iter().filter(|&&v| v == 0.0).count();
        assert!((5..=21).contains(&blanked), "blanked {blanked} pixels");
    }

    #[test]
    fn zero_radius_beamstop_is_noop() {
        let p = pair();
        let mut img = diffraction_intensity(&p.conf_a, &Rotation::identity(), 9, 0.1);
        let before = img.clone();
        apply_beamstop(&mut img, 9, 0.0);
        assert_eq!(img, before);
    }

    #[test]
    fn correlation_bounds() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let b: Vec<f32> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-9);
        let c: Vec<f32> = a.iter().map(|v| -v).collect();
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-9);
        assert_eq!(correlation(&a, &[1.0; 4]), 0.0); // degenerate
    }
}
