//! Synthetic protein conformers.
//!
//! The paper classifies two conformations of eEF2 (PDB 1n0u vs 1n0v),
//! which differ by a rigid-body rearrangement of domain IV. Without the
//! PDB structures, we build an analogous pair: a two-domain point-scatterer
//! model in which conformer B has its second domain rotated around a hinge
//! axis by a configurable angle. The diffraction patterns of the two
//! conformers therefore differ systematically (interference between the
//! domains changes) while each conformer still produces a broad family of
//! orientation-dependent patterns — the same classification problem.

use crate::geometry::Rotation;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A rigid arrangement of point scatterers ("atoms").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conformer {
    /// Atom positions in ångström-like units, centered on the origin.
    pub atoms: Vec<[f64; 3]>,
}

impl Conformer {
    /// Centroid of the atoms.
    pub fn centroid(&self) -> [f64; 3] {
        let n = self.atoms.len().max(1) as f64;
        let mut c = [0.0; 3];
        for a in &self.atoms {
            for i in 0..3 {
                c[i] += a[i] / n;
            }
        }
        c
    }

    /// Radius of gyration (spread of the scatterers).
    pub fn radius_of_gyration(&self) -> f64 {
        let c = self.centroid();
        let n = self.atoms.len().max(1) as f64;
        let sum: f64 = self
            .atoms
            .iter()
            .map(|a| (0..3).map(|i| (a[i] - c[i]) * (a[i] - c[i])).sum::<f64>())
            .sum();
        (sum / n).sqrt()
    }

    /// Return a copy rotated by `r` (about the origin).
    pub fn rotated(&self, r: &Rotation) -> Conformer {
        Conformer {
            atoms: self.atoms.iter().map(|&a| r.apply(a)).collect(),
        }
    }
}

/// The two conformers of the classification problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConformerPair {
    /// Conformation A (label 0).
    pub conf_a: Conformer,
    /// Conformation B (label 1): domain 2 rotated around the hinge.
    pub conf_b: Conformer,
}

/// Parameters of the synthetic two-domain protein.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProteinParams {
    /// Atoms per domain.
    pub atoms_per_domain: usize,
    /// Gaussian domain radius.
    pub domain_radius: f64,
    /// Distance between the two domain centers.
    pub domain_separation: f64,
    /// Hinge rotation (degrees) distinguishing conformer B from A.
    pub hinge_angle_deg: f64,
}

impl Default for ProteinParams {
    fn default() -> Self {
        ProteinParams {
            atoms_per_domain: 60,
            domain_radius: 4.0,
            domain_separation: 12.0,
            hinge_angle_deg: 90.0,
        }
    }
}

impl ConformerPair {
    /// Build the pair deterministically from a seed.
    pub fn generate(params: &ProteinParams, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let half = params.domain_separation / 2.0;
        let domain = |center: [f64; 3], rng: &mut rand::rngs::StdRng| -> Vec<[f64; 3]> {
            (0..params.atoms_per_domain)
                .map(|_| {
                    // Isotropic Gaussian blob via Box–Muller pairs.
                    let mut g = [0.0f64; 3];
                    for v in &mut g {
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                        *v = (-2.0 * u1.ln()).sqrt() * u2.cos() * params.domain_radius / 2.0;
                    }
                    [center[0] + g[0], center[1] + g[1], center[2] + g[2]]
                })
                .collect()
        };
        let domain1 = domain([-half, 0.0, 0.0], &mut rng);
        let domain2 = domain([half, 0.0, 0.0], &mut rng);

        let mut atoms_a = domain1.clone();
        atoms_a.extend_from_slice(&domain2);

        // Conformer B: rotate domain 2 around a hinge at the junction
        // (y-axis through the midpoint between domains).
        let hinge = Rotation::around_axis([0.0, 1.0, 0.0], params.hinge_angle_deg.to_radians());
        let mut atoms_b = domain1;
        atoms_b.extend(domain2.iter().map(|&a| hinge.apply(a)));

        ConformerPair {
            conf_a: Conformer { atoms: atoms_a },
            conf_b: Conformer { atoms: atoms_b },
        }
    }

    /// The conformer for a class label (0 = A, 1 = B).
    pub fn by_label(&self, label: usize) -> &Conformer {
        match label {
            0 => &self.conf_a,
            1 => &self.conf_b,
            other => panic!("conformation label must be 0 or 1, got {other}"),
        }
    }

    /// Root-mean-square deviation between the two conformers' atoms.
    pub fn rmsd(&self) -> f64 {
        let n = self.conf_a.atoms.len().max(1) as f64;
        let sum: f64 = self
            .conf_a
            .atoms
            .iter()
            .zip(&self.conf_b.atoms)
            .map(|(a, b)| (0..3).map(|i| (a[i] - b[i]) * (a[i] - b[i])).sum::<f64>())
            .sum();
        (sum / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformers_share_atom_count() {
        let pair = ConformerPair::generate(&ProteinParams::default(), 1);
        assert_eq!(pair.conf_a.atoms.len(), 120);
        assert_eq!(pair.conf_a.atoms.len(), pair.conf_b.atoms.len());
    }

    #[test]
    fn first_domain_is_shared_second_differs() {
        let params = ProteinParams::default();
        let pair = ConformerPair::generate(&params, 2);
        let n = params.atoms_per_domain;
        assert_eq!(&pair.conf_a.atoms[..n], &pair.conf_b.atoms[..n]);
        assert_ne!(&pair.conf_a.atoms[n..], &pair.conf_b.atoms[n..]);
    }

    #[test]
    fn rmsd_grows_with_hinge_angle() {
        let small = ConformerPair::generate(
            &ProteinParams {
                hinge_angle_deg: 5.0,
                ..Default::default()
            },
            3,
        );
        let large = ConformerPair::generate(
            &ProteinParams {
                hinge_angle_deg: 60.0,
                ..Default::default()
            },
            3,
        );
        assert!(large.rmsd() > small.rmsd() * 2.0);
    }

    #[test]
    fn zero_hinge_angle_makes_identical_conformers() {
        let pair = ConformerPair::generate(
            &ProteinParams {
                hinge_angle_deg: 0.0,
                ..Default::default()
            },
            4,
        );
        assert!(pair.rmsd() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ConformerPair::generate(&ProteinParams::default(), 7);
        let b = ConformerPair::generate(&ProteinParams::default(), 7);
        assert_eq!(a.conf_a, b.conf_a);
        assert_eq!(a.conf_b, b.conf_b);
        let c = ConformerPair::generate(&ProteinParams::default(), 8);
        assert_ne!(a.conf_a, c.conf_a);
    }

    #[test]
    fn geometry_is_plausible() {
        let params = ProteinParams::default();
        let pair = ConformerPair::generate(&params, 9);
        let rg = pair.conf_a.radius_of_gyration();
        // Two domains separated by 12 with radius 4 ⇒ Rg around 6–8.
        assert!((4.0..12.0).contains(&rg), "radius of gyration {rg}");
    }

    #[test]
    #[should_panic(expected = "label must be 0 or 1")]
    fn bad_label_panics() {
        let pair = ConformerPair::generate(&ProteinParams::default(), 1);
        let _ = pair.by_label(2);
    }
}
