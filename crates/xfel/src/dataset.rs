//! Dataset generation: balanced, seeded, rayon-parallel rendering of
//! labeled diffraction images into an [`a4nn_nn::Dataset`].

use crate::beam::BeamIntensity;
use crate::conformer::{ConformerPair, ProteinParams};
use crate::diffraction::{diffraction_intensity, render_pattern};
use crate::geometry::random_rotation;
use a4nn_nn::Dataset;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated XFEL experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XfelConfig {
    /// Detector side in pixels (images are `detector × detector`).
    pub detector: usize,
    /// Momentum-transfer step per pixel.
    pub q_step: f64,
    /// Beamstop radius in pixels (0 disables the central mask).
    pub beamstop_radius: f64,
    /// Synthetic protein geometry.
    pub protein: ProteinParams,
    /// Seed for the conformer pair (the "protein structure").
    pub protein_seed: u64,
}

impl Default for XfelConfig {
    fn default() -> Self {
        XfelConfig {
            detector: 16,
            q_step: 0.10,
            beamstop_radius: 0.0,
            protein: ProteinParams::default(),
            protein_seed: 0xEF2,
        }
    }
}

impl XfelConfig {
    /// A slightly larger detector for the examples.
    pub fn with_detector(detector: usize) -> Self {
        XfelConfig {
            detector,
            ..Default::default()
        }
    }
}

/// Generate `n_per_class` images per conformation at the given beam
/// intensity. Classes alternate (A, B, A, B, …) so positional splits stay
/// balanced; every image gets an independent orientation and noise stream
/// derived from `seed` and its index, making generation order-independent
/// and reproducible.
pub fn generate_dataset(
    config: &XfelConfig,
    beam: BeamIntensity,
    n_per_class: usize,
    seed: u64,
) -> Dataset {
    let pair = ConformerPair::generate(&config.protein, config.protein_seed);
    let total = n_per_class * 2;
    let det = config.detector;
    let images: Vec<(Vec<f32>, usize)> = (0..total)
        .into_par_iter()
        .map(|i| {
            let label = i % 2;
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let orientation = random_rotation(&mut rng);
            let mut intensity =
                diffraction_intensity(pair.by_label(label), &orientation, det, config.q_step);
            crate::diffraction::apply_beamstop(&mut intensity, det, config.beamstop_radius);
            (render_pattern(&intensity, beam, &mut rng), label)
        })
        .collect();
    let mut dataset = Dataset::empty(1, det, det);
    for (pixels, label) in &images {
        dataset.push(pixels, *label);
    }
    dataset
}

/// Generate a dataset and apply the paper's 80/20 train/test split.
pub fn generate_split(
    config: &XfelConfig,
    beam: BeamIntensity,
    n_per_class: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    generate_dataset(config, beam, n_per_class, seed).split(0.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> XfelConfig {
        XfelConfig::default()
    }

    #[test]
    fn dataset_is_balanced_and_sized() {
        let d = generate_dataset(&cfg(), BeamIntensity::Medium, 8, 1);
        assert_eq!(d.len(), 16);
        assert_eq!(d.class_counts(), vec![8, 8]);
        assert_eq!(d.sample_stride(), 16 * 16);
    }

    #[test]
    fn split_is_80_20_and_balanced() {
        let (train, test) = generate_split(&cfg(), BeamIntensity::High, 20, 2);
        assert_eq!(train.len(), 32);
        assert_eq!(test.len(), 8);
        // Alternating labels keep both splits balanced.
        assert_eq!(train.class_counts(), vec![16, 16]);
        assert_eq!(test.class_counts(), vec![4, 4]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_dataset(&cfg(), BeamIntensity::Low, 4, 3);
        let b = generate_dataset(&cfg(), BeamIntensity::Low, 4, 3);
        assert_eq!(a.images, b.images);
        let c = generate_dataset(&cfg(), BeamIntensity::Low, 4, 4);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn images_are_normalized() {
        let d = generate_dataset(&cfg(), BeamIntensity::Medium, 4, 5);
        assert!(d.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn different_beams_differ_in_noise() {
        // Same seed, different beams ⇒ same orientations, different noise.
        let low = generate_dataset(&cfg(), BeamIntensity::Low, 4, 6);
        let high = generate_dataset(&cfg(), BeamIntensity::High, 4, 6);
        assert_ne!(low.images, high.images);
    }

    #[test]
    fn beamstop_changes_images_without_breaking_balance() {
        let masked = XfelConfig {
            beamstop_radius: 2.0,
            ..cfg()
        };
        let with = generate_dataset(&masked, BeamIntensity::High, 4, 9);
        let without = generate_dataset(&cfg(), BeamIntensity::High, 4, 9);
        assert_ne!(with.images, without.images);
        assert_eq!(with.class_counts(), vec![4, 4]);
        // The central pixel (brightest without a stop) is now dark.
        let det = masked.detector;
        let stride = with.sample_stride();
        for i in 0..with.len() {
            let img = &with.images[i * stride..(i + 1) * stride];
            // Detector center lies between pixels for even sizes; check
            // the four central pixels.
            for (y, x) in [
                (det / 2 - 1, det / 2 - 1),
                (det / 2 - 1, det / 2),
                (det / 2, det / 2 - 1),
                (det / 2, det / 2),
            ] {
                assert_eq!(img[y * det + x], 0.0, "center not blanked in image {i}");
            }
        }
    }

    #[test]
    fn classes_are_distinguishable_by_mean_pattern() {
        // Average many same-class images: class means should differ more
        // between classes than within a class (signal exists for the NN).
        let d = generate_dataset(&cfg(), BeamIntensity::High, 64, 7);
        let stride = d.sample_stride();
        let mut mean = [vec![0.0f64; stride], vec![0.0f64; stride]];
        let mut count = [0usize; 2];
        for (i, &label) in d.labels.iter().enumerate() {
            count[label] += 1;
            for (m, &v) in mean[label]
                .iter_mut()
                .zip(&d.images[i * stride..(i + 1) * stride])
            {
                *m += f64::from(v);
            }
        }
        for (m, &c) in mean.iter_mut().zip(&count) {
            m.iter_mut().for_each(|v| *v /= c as f64);
        }
        let dist: f64 = mean[0]
            .iter()
            .zip(&mean[1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.05, "class mean separation {dist}");
    }
}
