//! Multi-protein classification: the broader XPSI task.
//!
//! The XPSI framework the paper compares against (Olaya et al., 2022)
//! classifies protein *type* as well as conformation. This module extends
//! the simulator to a library of distinct synthetic proteins, each with
//! two conformations, producing a `2·P`-class dataset
//! (label = `protein_index · 2 + conformation`).

use crate::beam::BeamIntensity;
use crate::conformer::{ConformerPair, ProteinParams};
use crate::dataset::XfelConfig;
use crate::diffraction::{diffraction_intensity, render_pattern};
use crate::geometry::random_rotation;
use a4nn_nn::Dataset;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A library of distinct synthetic proteins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProteinLibrary {
    /// One conformer pair per protein.
    pub proteins: Vec<ConformerPair>,
}

impl ProteinLibrary {
    /// Generate `count` visibly distinct proteins by scaling the geometry
    /// per protein: size and inter-domain separation grow with the index,
    /// which changes the speckle spacing — the feature that
    /// distinguishes protein types in diffraction.
    pub fn generate(count: usize, base: &ProteinParams, seed: u64) -> Self {
        assert!(count >= 1, "library needs at least one protein");
        let proteins = (0..count)
            .map(|i| {
                let scale = 1.0 + 0.35 * i as f64;
                let params = ProteinParams {
                    atoms_per_domain: base.atoms_per_domain + 12 * i,
                    domain_radius: base.domain_radius * scale,
                    domain_separation: base.domain_separation * scale,
                    hinge_angle_deg: base.hinge_angle_deg,
                };
                ConformerPair::generate(&params, seed ^ (i as u64).wrapping_mul(0xA5A5_5A5A))
            })
            .collect();
        ProteinLibrary { proteins }
    }

    /// Number of classes the library induces (`2 · proteins`).
    pub fn num_classes(&self) -> usize {
        self.proteins.len() * 2
    }
}

/// Generate a balanced multi-protein dataset: `n_per_class` images for
/// each of the `2·P` (protein, conformation) classes, cycling class labels
/// so positional splits stay balanced.
pub fn generate_multiclass_dataset(
    config: &XfelConfig,
    library: &ProteinLibrary,
    beam: BeamIntensity,
    n_per_class: usize,
    seed: u64,
) -> Dataset {
    let classes = library.num_classes();
    let total = n_per_class * classes;
    let det = config.detector;
    let images: Vec<(Vec<f32>, usize)> = (0..total)
        .into_par_iter()
        .map(|i| {
            let label = i % classes;
            let protein = label / 2;
            let conformation = label % 2;
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let orientation = random_rotation(&mut rng);
            let conformer = library.proteins[protein].by_label(conformation);
            let mut intensity = diffraction_intensity(conformer, &orientation, det, config.q_step);
            crate::diffraction::apply_beamstop(&mut intensity, det, config.beamstop_radius);
            (render_pattern(&intensity, beam, &mut rng), label)
        })
        .collect();
    let mut dataset = Dataset::empty(1, det, det);
    for (pixels, label) in &images {
        dataset.push(pixels, *label);
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> ProteinLibrary {
        ProteinLibrary::generate(2, &ProteinParams::default(), 5)
    }

    #[test]
    fn library_generates_distinct_proteins() {
        let lib = library();
        assert_eq!(lib.proteins.len(), 2);
        assert_eq!(lib.num_classes(), 4);
        // Different atom counts and spreads per protein.
        assert_ne!(
            lib.proteins[0].conf_a.atoms.len(),
            lib.proteins[1].conf_a.atoms.len()
        );
        assert!(
            lib.proteins[1].conf_a.radius_of_gyration()
                > lib.proteins[0].conf_a.radius_of_gyration()
        );
    }

    #[test]
    fn multiclass_dataset_is_balanced() {
        let d = generate_multiclass_dataset(
            &XfelConfig::default(),
            &library(),
            BeamIntensity::High,
            6,
            1,
        );
        assert_eq!(d.len(), 24);
        assert_eq!(d.class_counts(), vec![6, 6, 6, 6]);
    }

    #[test]
    fn split_stays_balanced() {
        let d = generate_multiclass_dataset(
            &XfelConfig::default(),
            &library(),
            BeamIntensity::Medium,
            10,
            2,
        );
        let (train, test) = d.split(0.2);
        assert_eq!(train.class_counts(), vec![8, 8, 8, 8]);
        assert_eq!(test.class_counts(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_multiclass_dataset(
            &XfelConfig::default(),
            &library(),
            BeamIntensity::Low,
            3,
            9,
        );
        let b = generate_multiclass_dataset(
            &XfelConfig::default(),
            &library(),
            BeamIntensity::Low,
            3,
            9,
        );
        assert_eq!(a.images, b.images);
    }

    #[test]
    fn protein_types_are_more_distinguishable_than_conformations() {
        // Mean-image distance between protein types should exceed the
        // distance between conformations of the same protein (size is a
        // stronger diffraction signal than a hinge rotation).
        let d = generate_multiclass_dataset(
            &XfelConfig::default(),
            &library(),
            BeamIntensity::High,
            48,
            3,
        );
        let stride = d.sample_stride();
        let mut means = vec![vec![0.0f64; stride]; 4];
        let mut counts = [0usize; 4];
        for (i, &label) in d.labels.iter().enumerate() {
            counts[label] += 1;
            for (m, &v) in means[label]
                .iter_mut()
                .zip(&d.images[i * stride..(i + 1) * stride])
            {
                *m += f64::from(v);
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            m.iter_mut().for_each(|v| *v /= c as f64);
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let between_types = dist(&means[0], &means[2]);
        let within_type = dist(&means[0], &means[1]);
        assert!(
            between_types > within_type,
            "type distance {between_types} vs conformation distance {within_type}"
        );
    }
}
