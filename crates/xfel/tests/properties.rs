//! Property-based tests of the diffraction simulator.

use a4nn_xfel::conformer::ProteinParams;
use a4nn_xfel::{
    diffraction_intensity, generate_dataset, random_rotation, BeamIntensity, ConformerPair,
    Rotation, XfelConfig,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rotations from any seed are orthonormal and preserve distances.
    #[test]
    fn rotations_preserve_geometry(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = random_rotation(&mut rng);
        prop_assert!((r.determinant() - 1.0).abs() < 1e-9);
        let p = [1.0, -2.0, 0.5];
        let q = [0.3, 0.7, -1.1];
        let d = |a: [f64; 3], b: [f64; 3]| {
            (0..3).map(|i| (a[i] - b[i]).powi(2)).sum::<f64>().sqrt()
        };
        prop_assert!((d(r.apply(p), r.apply(q)) - d(p, q)).abs() < 1e-9);
    }

    /// Intensity is non-negative, finite, bounded by N², and invariant
    /// under in-plane inversion of the pattern (Friedel symmetry for real
    /// scatterers: I(q) = I(−q)).
    #[test]
    fn intensity_physics(seed in any::<u64>(), det in 3usize..12) {
        let pair = ConformerPair::generate(&ProteinParams::default(), 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rot = random_rotation(&mut rng);
        let img = diffraction_intensity(&pair.conf_a, &rot, det, 0.12);
        let n2 = (pair.conf_a.atoms.len() as f64).powi(2);
        for &v in &img {
            prop_assert!(v.is_finite());
            prop_assert!(v >= -1e-9);
            prop_assert!(v <= n2 * (1.0 + 1e-9));
        }
        // Friedel: pixel (i, j) equals pixel (det−1−i, det−1−j).
        for i in 0..det {
            for j in 0..det {
                let a = img[i * det + j];
                let b = img[(det - 1 - i) * det + (det - 1 - j)];
                prop_assert!((a - b).abs() < 1e-6 * n2, "Friedel violated at ({i},{j})");
            }
        }
    }

    /// Identity-rotation pattern of conformer A equals the pattern of the
    /// globally rotated conformer under the inverse orientation... more
    /// simply: rotating the conformer and the beam identically is a no-op.
    #[test]
    fn rotation_composition_consistency(seed in any::<u64>()) {
        let pair = ConformerPair::generate(&ProteinParams::default(), 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = random_rotation(&mut rng);
        let direct = diffraction_intensity(&pair.conf_a, &r, 8, 0.1);
        let pre_rotated = pair.conf_a.rotated(&r);
        let via_conformer = diffraction_intensity(&pre_rotated, &Rotation::identity(), 8, 0.1);
        for (a, b) in direct.iter().zip(&via_conformer) {
            prop_assert!((a - b).abs() < 1e-6 * direct[0].max(1.0));
        }
    }

    /// Generated datasets are balanced, normalized, and deterministic for
    /// any seed and class size.
    #[test]
    fn datasets_well_formed(seed in any::<u64>(), n in 1usize..6) {
        let cfg = XfelConfig { detector: 8, ..XfelConfig::default() };
        let d = generate_dataset(&cfg, BeamIntensity::Medium, n, seed);
        prop_assert_eq!(d.len(), 2 * n);
        prop_assert_eq!(d.class_counts(), vec![n, n]);
        prop_assert!(d.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let d2 = generate_dataset(&cfg, BeamIntensity::Medium, n, seed);
        prop_assert_eq!(d.images, d2.images);
    }
}
