//! # a4nn-error — the workspace error vocabulary
//!
//! One typed error enum, [`A4nnError`], shared by every layer of the
//! workflow: the evaluation pipeline, the scheduler pool, the lineage
//! writers, the bus service layer, and the CLI. Fallible operations
//! return `Result<_, A4nnError>` instead of panicking, and the CLI maps
//! each variant onto a distinct process exit code so scripted callers
//! (the paper's driver scripts, CI) can dispatch on failure class
//! without parsing stderr.
//!
//! The enum is deliberately coarse: variants distinguish *what kind of
//! subsystem failed* (I/O, checkpoint store, bus, trainer, config), not
//! every individual failure site — the human-readable context string
//! carries the specifics.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::io;

/// Every failure class the a4nn workflow can surface.
///
/// ```
/// use a4nn_error::A4nnError;
///
/// let e = A4nnError::Config("population must be positive".into());
/// assert_eq!(e.exit_code(), 3);
/// assert_eq!(e.to_string(), "invalid configuration: population must be positive");
/// ```
#[derive(Debug)]
pub enum A4nnError {
    /// Filesystem or serialization I/O failed; `context` names the
    /// operation and path.
    Io {
        /// What was being attempted (operation + path).
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A checkpoint could not be saved, loaded, or decoded.
    Checkpoint(String),
    /// The event bus closed while a producer or service still needed it.
    BusClosed(String),
    /// A trainer crashed past its retry budget in a context where the
    /// crash cannot be absorbed as a `Terminated::Failed` record.
    TrainerCrash {
        /// The model whose trainer crashed.
        model_id: u64,
        /// Attempts consumed before giving up.
        attempts: u32,
        /// The crash message, when one was recoverable.
        message: String,
    },
    /// The requested configuration is invalid or inconsistent.
    Config(String),
    /// An internal invariant broke (a worker thread died, a service
    /// panicked); always a bug, never a user error.
    Internal(String),
    /// The network layer between the coordinator and a worker process
    /// broke: a handshake was refused, a frame was malformed, a worker
    /// died past the dispatch-retry budget, or every worker is gone.
    /// Trainer panics *on* a worker are not `Net` errors — they flow
    /// back as failed training outcomes, exactly like local panics.
    Net(String),
    /// A cancellation hook stopped the search at a generation boundary
    /// after its state snapshot was committed. Not a failure of any
    /// subsystem: the run directory is resumable via `--resume`.
    Interrupted(String),
    /// An admission-controlled component (the inference server's bounded
    /// request queue) refused work because it is at capacity. Not
    /// machinery breakage: the caller should back off and retry, and a
    /// load generator that saw *nothing but* rejections surfaces this
    /// class instead of reporting an empty measurement.
    Saturated(String),
}

impl A4nnError {
    /// Shorthand for an [`A4nnError::Io`] with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        A4nnError::Io {
            context: context.into(),
            source,
        }
    }

    /// The process exit code the CLI maps this failure class onto.
    ///
    /// `0` is success and `2` is reserved for argument-parse errors
    /// (both outside this enum), so variants start at `3`:
    ///
    /// | code | class |
    /// |------|-------|
    /// | 3 | invalid configuration |
    /// | 4 | I/O failure |
    /// | 5 | checkpoint failure |
    /// | 6 | bus closed |
    /// | 7 | trainer crash past retries |
    /// | 8 | internal invariant broken |
    /// | 9 | network failure (worker lost, bad frame, handshake refused) |
    /// | 10 | interrupted at a generation boundary (resumable) |
    /// | 11 | admission queue saturated (back off and retry) |
    pub fn exit_code(&self) -> i32 {
        match self {
            A4nnError::Config(_) => 3,
            A4nnError::Io { .. } => 4,
            A4nnError::Checkpoint(_) => 5,
            A4nnError::BusClosed(_) => 6,
            A4nnError::TrainerCrash { .. } => 7,
            A4nnError::Internal(_) => 8,
            A4nnError::Net(_) => 9,
            A4nnError::Interrupted(_) => 10,
            A4nnError::Saturated(_) => 11,
        }
    }
}

impl fmt::Display for A4nnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            A4nnError::Io { context, source } => write!(f, "{context}: {source}"),
            A4nnError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            A4nnError::BusClosed(msg) => write!(f, "bus closed: {msg}"),
            A4nnError::TrainerCrash {
                model_id,
                attempts,
                message,
            } => write!(
                f,
                "trainer for model {model_id} crashed after {attempts} attempt(s): {message}"
            ),
            A4nnError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            A4nnError::Internal(msg) => write!(f, "internal error: {msg}"),
            A4nnError::Net(msg) => write!(f, "network failure: {msg}"),
            A4nnError::Interrupted(msg) => write!(f, "search interrupted: {msg}"),
            A4nnError::Saturated(msg) => write!(f, "saturated: {msg}"),
        }
    }
}

impl std::error::Error for A4nnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            A4nnError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for A4nnError {
    fn from(source: io::Error) -> Self {
        A4nnError::Io {
            context: "I/O error".to_string(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            A4nnError::Config("c".into()),
            A4nnError::io("ctx", io::Error::other("x")),
            A4nnError::Checkpoint("c".into()),
            A4nnError::BusClosed("b".into()),
            A4nnError::TrainerCrash {
                model_id: 1,
                attempts: 3,
                message: "m".into(),
            },
            A4nnError::Internal("i".into()),
            A4nnError::Net("n".into()),
            A4nnError::Interrupted("stopped at generation 2".into()),
            A4nnError::Saturated("admission queue full".into()),
        ];
        let codes: Vec<i32> = errors.iter().map(A4nnError::exit_code).collect();
        assert_eq!(codes, vec![3, 4, 5, 6, 7, 8, 9, 10, 11]);
        for c in codes {
            assert!(c != 0 && c != 1 && c != 2, "reserved code reused: {c}");
        }
    }

    #[test]
    fn display_is_single_line_with_context() {
        let e = A4nnError::io(
            "writing commons to ./out",
            io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        );
        let s = e.to_string();
        assert!(s.starts_with("writing commons to ./out: "));
        assert!(!s.contains('\n'), "diagnostics must be one line: {s:?}");
        let crash = A4nnError::TrainerCrash {
            model_id: 7,
            attempts: 3,
            message: "injected".into(),
        };
        assert_eq!(
            crash.to_string(),
            "trainer for model 7 crashed after 3 attempt(s): injected"
        );
        assert_eq!(
            A4nnError::Net("worker 127.0.0.1:7001 missed 3 heartbeats".into()).to_string(),
            "network failure: worker 127.0.0.1:7001 missed 3 heartbeats"
        );
        assert_eq!(
            A4nnError::Saturated("serve queue holds 64 request(s)".into()).to_string(),
            "saturated: serve queue holds 64 request(s)"
        );
    }

    #[test]
    fn io_errors_convert_and_chain_source() {
        use std::error::Error;
        let e: A4nnError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert_eq!(e.exit_code(), 4);
        assert!(e.source().is_some());
        assert!(A4nnError::Config("x".into()).source().is_none());
    }
}
