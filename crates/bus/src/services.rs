//! The streaming services that ride on the bus.
//!
//! Each service is one thread with its own filtered subscription,
//! mirroring a Wilkins-style task wired to the workflow through
//! communicators (§2.2): the [`PredictionEngineService`] answers
//! per-epoch fitness with verdicts, the [`LineageRecorderService`]
//! folds the event stream into record trails for the data commons, and
//! the [`RunStatsAggregator`] keeps run-level counters.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use a4nn_error::A4nnError;
use a4nn_lineage::{EngineParamsRecord, EpochRecord, ModelRecord, Terminated};
use a4nn_penguin::{EngineConfig, EngineStats, PredictionEngine};

use crate::events::{EngineVerdict, Event, TerminationAdvised};
use crate::topic::{Policy, SubscriberStats, Topic};

/// Fault hook for [`PredictionEngineService::spawn_hooked`]: called with
/// `(model_id, epoch)` before the engine observes the epoch; returning
/// `true` makes the engine panic there (the panic is injected *before*
/// the observation, so frozen stats reflect `epoch - 1`).
pub type EngineFaultHook = Box<dyn Fn(u64, u32) -> bool + Send>;

/// Queue depth of the engine service's inbox; trainers block (the
/// `Block` policy) once this many epochs are waiting, which is the
/// backpressure path the paper's in-situ coupling implies.
pub const ENGINE_INBOX_CAPACITY: usize = 1024;

/// In-situ prediction engine as a bus service.
///
/// Consumes [`Event::EpochCompleted`], maintains one
/// [`PredictionEngine`] per model, and publishes an
/// [`Event::EngineVerdict`] per epoch — plus an
/// [`Event::TerminationAdvised`] when the analyzer converges, after
/// which the model's engine instance is retired.
pub struct PredictionEngineService {
    handle: JoinHandle<EngineStats>,
}

impl PredictionEngineService {
    /// Spawn the service on `topic` with the given engine
    /// configuration (one clone per model).
    pub fn spawn(topic: &Topic<Event>, config: EngineConfig) -> Self {
        Self::spawn_hooked(topic, config, None)
    }

    /// [`spawn`](Self::spawn) with an optional fault hook.
    ///
    /// Every per-epoch engine interaction runs under `catch_unwind`: a
    /// panic (injected by `hook` or organic) retires the crashed model's
    /// engine instead of killing the service. The retired model gets one
    /// final [`EngineVerdict`] with `retired: true` and stats frozen at
    /// the crash point; its later epochs are ignored (no verdicts), so a
    /// degraded trainer must not wait for them. A
    /// [`Event::TrainingFailed`] clears the model's engine *and* its
    /// tombstone, so a retry replays the fault plan from epoch 1.
    pub fn spawn_hooked(
        topic: &Topic<Event>,
        config: EngineConfig,
        hook: Option<EngineFaultHook>,
    ) -> Self {
        let inbox = topic.subscribe_filtered(
            Policy::Block {
                capacity: ENGINE_INBOX_CAPACITY,
            },
            |event| matches!(event, Event::EpochCompleted(_) | Event::TrainingFailed(_)),
        );
        let topic = topic.clone();
        let handle = std::thread::spawn(move || {
            let mut engines: HashMap<u64, PredictionEngine> = HashMap::new();
            // Tombstones of crashed per-model engines, with stats frozen
            // at the crash point. Folded into the totals only at close —
            // a tombstone still present then belongs to a model that
            // completed degraded; a failed attempt's tombstone is
            // dropped (its replayed retry re-counts from scratch), which
            // mirrors the direct path's sum over final outcomes.
            let mut retired: HashMap<u64, EngineStats> = HashMap::new();
            let mut totals = EngineStats::default();
            while let Ok(event) = inbox.recv() {
                let epoch = match event {
                    Event::EpochCompleted(e) => e,
                    Event::TrainingFailed(f) => {
                        // The attempt's engine state is replayed from
                        // scratch on retry; its stats never reached a
                        // completed model, so they don't count.
                        engines.remove(&f.model_id);
                        retired.remove(&f.model_id);
                        continue;
                    }
                    _ => continue,
                };
                if retired.contains_key(&epoch.model_id) {
                    continue; // degraded trainer isn't waiting for a verdict
                }
                let engine = engines
                    .entry(epoch.model_id)
                    .or_insert_with(|| PredictionEngine::new(config.clone()));
                // Exactly the direct-path interaction sequence
                // (core::training), so verdicts are bit-identical.
                let interaction = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(check) = &hook {
                        assert!(
                            !check(epoch.model_id, epoch.epoch),
                            "injected engine fault: model {} epoch {}",
                            epoch.model_id,
                            epoch.epoch
                        );
                    }
                    engine.observe(epoch.epoch, epoch.val_acc);
                    let converged = engine.step();
                    let prediction = engine.predictions().last().copied().flatten();
                    (converged, prediction)
                }));
                let verdict = match interaction {
                    Ok((converged, prediction)) => {
                        let stats = engine.stats();
                        Event::EngineVerdict(EngineVerdict {
                            model_id: epoch.model_id,
                            epoch: epoch.epoch,
                            prediction,
                            converged,
                            engine_seconds: stats.total_seconds,
                            engine_interactions: stats.interactions,
                            retired: false,
                        })
                    }
                    Err(_) => {
                        // Graceful degradation: retire this model's
                        // engine with stats frozen before the crash
                        // epoch, tell the trainer, keep serving others.
                        let Some(crashed) = engines.remove(&epoch.model_id) else {
                            unreachable!("crashed engine was just inserted")
                        };
                        let frozen = crashed.stats();
                        retired.insert(epoch.model_id, frozen);
                        Event::EngineVerdict(EngineVerdict {
                            model_id: epoch.model_id,
                            epoch: epoch.epoch,
                            prediction: None,
                            converged: None,
                            engine_seconds: frozen.total_seconds,
                            engine_interactions: frozen.interactions,
                            retired: true,
                        })
                    }
                };
                let converged = match &verdict {
                    Event::EngineVerdict(v) => v.converged,
                    _ => unreachable!(),
                };
                if topic.publish(verdict).is_err() {
                    break; // topic closed mid-drain; no trainer is waiting
                }
                if let Some(fitness) = converged {
                    let _ = topic.publish(Event::TerminationAdvised(TerminationAdvised {
                        model_id: epoch.model_id,
                        epoch: epoch.epoch,
                        fitness,
                    }));
                    // Training stops here; retire the per-model engine.
                    if let Some(done) = engines.remove(&epoch.model_id) {
                        accumulate(&mut totals, done.stats());
                    }
                }
            }
            for (_, engine) in engines {
                accumulate(&mut totals, engine.stats());
            }
            for (_, frozen) in retired {
                accumulate(&mut totals, frozen);
            }
            totals
        });
        PredictionEngineService { handle }
    }

    /// Wait for close-and-drain; returns the aggregate engine stats
    /// across every model the service analyzed.
    ///
    /// Errs only if the service thread itself panicked — per-model engine
    /// crashes are absorbed by the degradation path above.
    pub fn join(self) -> Result<EngineStats, A4nnError> {
        self.handle
            .join()
            .map_err(|_| A4nnError::Internal("prediction engine service panicked".into()))
    }
}

fn accumulate(totals: &mut EngineStats, stats: EngineStats) {
    totals.interactions += stats.interactions;
    totals.fits += stats.fits;
    totals.fit_failures += stats.fit_failures;
    totals.total_seconds += stats.total_seconds;
}

/// Streams record trails into the data commons.
///
/// Buffers every event until the topic closes, then folds them into
/// one [`ModelRecord`] per model — identical to what the direct path's
/// batch evaluator constructs, so the bus orchestration reproduces the
/// direct record trails byte for byte.
pub struct LineageRecorderService {
    handle: JoinHandle<Vec<ModelRecord>>,
}

impl LineageRecorderService {
    /// Spawn the recorder. `engine` and `beam` are run-level metadata
    /// stamped onto every record (engine parameters are per-run, not
    /// per-event).
    pub fn spawn(topic: &Topic<Event>, engine: Option<EngineParamsRecord>, beam: String) -> Self {
        // Unbounded: the audit stream must be lossless and must never
        // apply backpressure to trainers.
        let inbox = topic.subscribe(Policy::Unbounded);
        let handle = std::thread::spawn(move || {
            let mut epochs: BTreeMap<u64, Vec<EpochRecord>> = BTreeMap::new();
            let mut predictions: HashMap<(u64, u32), Option<f64>> = HashMap::new();
            let mut gpus: HashMap<u64, usize> = HashMap::new();
            let mut completed: BTreeMap<u64, crate::events::ModelCompleted> = BTreeMap::new();
            while let Ok(event) = inbox.recv() {
                match event {
                    Event::EpochCompleted(e) => {
                        epochs.entry(e.model_id).or_default().push(EpochRecord {
                            epoch: e.epoch,
                            train_acc: e.train_acc,
                            val_acc: e.val_acc,
                            duration_s: e.duration_s,
                            prediction: None,
                        });
                    }
                    Event::EngineVerdict(v) => {
                        predictions.insert((v.model_id, v.epoch), v.prediction);
                    }
                    Event::ModelCompleted(m) => {
                        completed.insert(m.model_id, m);
                    }
                    Event::TrainingFailed(f) => {
                        if f.will_retry {
                            // The retry replays from epoch 1; drop the
                            // dead attempt's partial trail so the record
                            // holds only the surviving attempt's epochs.
                            epochs.remove(&f.model_id);
                            predictions.retain(|(model, _), _| *model != f.model_id);
                        }
                        // No retry left: keep the partial trail — the
                        // Failed record carries it.
                    }
                    Event::GenerationScheduled(g) => {
                        for slot in g.assignments {
                            gpus.insert(slot.model_id, slot.gpu);
                        }
                    }
                    Event::TerminationAdvised(_) => {}
                }
            }
            completed
                .into_values()
                .map(|m| {
                    let mut trail = epochs.remove(&m.model_id).unwrap_or_default();
                    trail.sort_by_key(|e| e.epoch);
                    for entry in &mut trail {
                        if let Some(p) = predictions.get(&(m.model_id, entry.epoch)) {
                            entry.prediction = *p;
                        }
                    }
                    ModelRecord {
                        model_id: m.model_id,
                        generation: m.generation,
                        gpu: gpus.get(&m.model_id).copied(),
                        genome: m.genome,
                        arch_summary: m.arch_summary,
                        flops: m.flops,
                        objective_names: m.objective_names,
                        objective_values: m.objective_values,
                        engine: engine.clone(),
                        epochs: trail,
                        final_fitness: m.final_fitness,
                        predicted_fitness: m.predicted_fitness,
                        termination: if m.failed {
                            Terminated::Failed
                        } else if m.terminated_early {
                            Terminated::Early
                        } else {
                            Terminated::Completed
                        },
                        attempts: m.attempts,
                        beam: beam.clone(),
                        wall_time_s: m.train_seconds,
                    }
                })
                .collect()
        });
        LineageRecorderService { handle }
    }

    /// Wait for close-and-drain; returns the assembled record trails
    /// (sorted by model id). Errs only if the recorder thread panicked.
    pub fn join(self) -> Result<Vec<ModelRecord>, A4nnError> {
        self.handle
            .join()
            .map_err(|_| A4nnError::Internal("lineage recorder service panicked".into()))
    }
}

/// Run-level counters folded from the event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusRunStats {
    /// Epochs trained across every model.
    pub epochs_observed: u64,
    /// Engine interactions (one verdict per observed epoch).
    pub engine_interactions: u64,
    /// Early terminations the engine advised.
    pub terminations_advised: u64,
    /// Models whose training completed.
    pub models_completed: u64,
    /// Training attempts that died (caught panics), over all models.
    pub training_failures: u64,
    /// Generations scheduled.
    pub generations_scheduled: u64,
    /// Busy seconds per virtual GPU, summed over the run's schedules.
    pub gpu_busy_seconds: Vec<f64>,
    /// Delivery counters of the aggregator's own subscription.
    pub subscriber: SubscriberStats,
}

/// Folds the full event stream into [`BusRunStats`].
pub struct RunStatsAggregator {
    handle: JoinHandle<BusRunStats>,
}

impl RunStatsAggregator {
    /// Spawn the aggregator on `topic` (lossless audit subscription).
    pub fn spawn(topic: &Topic<Event>) -> Self {
        let inbox = topic.subscribe(Policy::Unbounded);
        let handle = std::thread::spawn(move || {
            let mut stats = BusRunStats::default();
            while let Ok(event) = inbox.recv() {
                match event {
                    Event::EpochCompleted(_) => stats.epochs_observed += 1,
                    Event::EngineVerdict(_) => stats.engine_interactions += 1,
                    Event::TerminationAdvised(_) => stats.terminations_advised += 1,
                    Event::ModelCompleted(_) => stats.models_completed += 1,
                    Event::TrainingFailed(_) => stats.training_failures += 1,
                    Event::GenerationScheduled(g) => {
                        stats.generations_scheduled += 1;
                        for slot in &g.assignments {
                            if stats.gpu_busy_seconds.len() <= slot.gpu {
                                stats.gpu_busy_seconds.resize(slot.gpu + 1, 0.0);
                            }
                            stats.gpu_busy_seconds[slot.gpu] += slot.end_s - slot.start_s;
                        }
                    }
                }
            }
            stats.subscriber = inbox.stats();
            stats
        });
        RunStatsAggregator { handle }
    }

    /// Wait for close-and-drain; returns the folded counters. Errs only
    /// if the aggregator thread panicked.
    pub fn join(self) -> Result<BusRunStats, A4nnError> {
        self.handle
            .join()
            .map_err(|_| A4nnError::Internal("run stats aggregator panicked".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EpochCompleted, GenerationScheduled, GpuSlot, ModelCompleted};
    use a4nn_genome::Genome;

    fn epoch(model_id: u64, epoch: u32, val_acc: f64) -> Event {
        Event::EpochCompleted(EpochCompleted {
            model_id,
            generation: 0,
            epoch,
            train_acc: val_acc + 1.0,
            val_acc,
            duration_s: 2.0,
        })
    }

    #[test]
    fn engine_service_matches_direct_engine() {
        let topic: Topic<Event> = Topic::new("a4nn");
        let verdicts =
            topic.subscribe_filtered(Policy::Unbounded, |e| matches!(e, Event::EngineVerdict(_)));
        let service = PredictionEngineService::spawn(&topic, EngineConfig::paper_defaults());

        // Drive a reference engine through the same fitness sequence.
        let mut reference = PredictionEngine::new(EngineConfig::paper_defaults());
        let curve = [40.0, 55.0, 63.0, 68.0, 71.0, 73.0, 74.5, 75.5, 76.2, 76.8];
        for (i, &acc) in curve.iter().enumerate() {
            let e = i as u32 + 1;
            topic.publish(epoch(7, e, acc)).unwrap();
            reference.observe(e, acc);
            let expect_converged = reference.step();
            let expect_prediction = reference.predictions().last().copied().flatten();
            let Ok(Event::EngineVerdict(v)) = verdicts.recv() else {
                panic!("expected a verdict");
            };
            assert_eq!(v.model_id, 7);
            assert_eq!(v.epoch, e);
            assert_eq!(v.prediction, expect_prediction);
            assert_eq!(v.converged, expect_converged);
            if expect_converged.is_some() {
                break;
            }
        }
        topic.close();
        let totals = service.join().unwrap();
        assert!(totals.interactions > 0);
    }

    #[test]
    fn recorder_assembles_full_trails() {
        let topic: Topic<Event> = Topic::new("a4nn");
        let recorder = LineageRecorderService::spawn(
            &topic,
            Some(EngineParamsRecord {
                function: "exp-base".into(),
                c_min: 3,
                e_pred: 25,
                n: 3,
                r: 0.5,
            }),
            "medium".into(),
        );
        let genome = Genome::from_compact_string("1011010-0110101-0000001").unwrap();
        for model_id in [2u64, 1u64] {
            for e in 1..=3u32 {
                topic
                    .publish(epoch(model_id, e, 50.0 + f64::from(e)))
                    .unwrap();
            }
            topic
                .publish(Event::EngineVerdict(EngineVerdict {
                    model_id,
                    epoch: 3,
                    prediction: Some(88.0),
                    converged: None,
                    engine_seconds: 0.01,
                    engine_interactions: 3,
                    retired: false,
                }))
                .unwrap();
            topic
                .publish(Event::ModelCompleted(ModelCompleted {
                    model_id,
                    generation: 0,
                    genome: genome.clone(),
                    arch_summary: "3 phases".into(),
                    flops: 500.0,
                    objective_names: vec!["neg_fitness".into(), "flops".into()],
                    objective_values: vec![-53.0, 500.0],
                    final_fitness: 53.0,
                    predicted_fitness: None,
                    terminated_early: false,
                    failed: false,
                    attempts: 1,
                    train_seconds: 6.0,
                }))
                .unwrap();
        }
        topic
            .publish(Event::GenerationScheduled(GenerationScheduled {
                generation: 0,
                assignments: vec![
                    GpuSlot {
                        model_id: 1,
                        gpu: 0,
                        start_s: 0.0,
                        end_s: 6.0,
                    },
                    GpuSlot {
                        model_id: 2,
                        gpu: 1,
                        start_s: 0.0,
                        end_s: 6.0,
                    },
                ],
            }))
            .unwrap();
        topic.close();
        let records = recorder.join().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].model_id, 1);
        assert_eq!(records[1].model_id, 2);
        assert_eq!(records[0].gpu, Some(0));
        assert_eq!(records[1].gpu, Some(1));
        assert_eq!(records[0].epochs.len(), 3);
        assert_eq!(records[0].epochs[2].prediction, Some(88.0));
        assert_eq!(records[0].epochs[0].prediction, None);
        assert_eq!(records[0].engine.as_ref().unwrap().function, "exp-base");
        assert_eq!(records[0].beam, "medium");
        // Objective fields ride the completion event into the record.
        assert_eq!(records[0].objective_names, vec!["neg_fitness", "flops"]);
        assert_eq!(records[0].objective_values, vec![-53.0, 500.0]);
    }

    #[test]
    fn engine_service_survives_injected_crash() {
        let topic: Topic<Event> = Topic::new("a4nn");
        let verdicts =
            topic.subscribe_filtered(Policy::Unbounded, |e| matches!(e, Event::EngineVerdict(_)));
        let service = PredictionEngineService::spawn_hooked(
            &topic,
            EngineConfig::paper_defaults(),
            Some(Box::new(|model, epoch| model == 7 && epoch == 3)),
        );

        for e in 1..=2u32 {
            topic.publish(epoch(7, e, 40.0 + f64::from(e))).unwrap();
            let Ok(Event::EngineVerdict(v)) = verdicts.recv() else {
                panic!("expected a verdict");
            };
            assert!(!v.retired);
            assert_eq!(v.engine_interactions, u64::from(e));
        }
        // Epoch 3 crashes the engine: one retired verdict, stats frozen
        // at epoch 2 (the crash fires before the observation).
        topic.publish(epoch(7, 3, 43.0)).unwrap();
        let Ok(Event::EngineVerdict(v)) = verdicts.recv() else {
            panic!("expected the retired verdict");
        };
        assert!(v.retired);
        assert_eq!(v.epoch, 3);
        assert_eq!(v.engine_interactions, 2);
        assert_eq!(v.converged, None);
        // Later epochs of the crashed model get no verdict; other
        // models keep full service.
        topic.publish(epoch(7, 4, 44.0)).unwrap();
        topic.publish(epoch(8, 1, 50.0)).unwrap();
        let Ok(Event::EngineVerdict(v)) = verdicts.recv() else {
            panic!("expected a verdict for the healthy model");
        };
        assert_eq!(v.model_id, 8);
        assert!(!v.retired);
        topic.close();
        // Run totals still include the crashed model's frozen stats
        // (the model completed, degraded) plus model 8's one epoch.
        assert_eq!(service.join().unwrap().interactions, 3);
    }

    #[test]
    fn recorder_handles_retries_and_failures() {
        let topic: Topic<Event> = Topic::new("a4nn");
        let recorder = LineageRecorderService::spawn(&topic, None, "low".into());
        let genome = Genome::from_compact_string("1011010-0110101-0000001").unwrap();

        // Model 5: first attempt dies after 2 epochs, retry completes.
        for e in 1..=2u32 {
            topic.publish(epoch(5, e, 50.0 + f64::from(e))).unwrap();
        }
        topic
            .publish(Event::TrainingFailed(crate::events::TrainingFailed {
                model_id: 5,
                generation: 0,
                epoch_reached: 2,
                attempt: 1,
                will_retry: true,
            }))
            .unwrap();
        for e in 1..=3u32 {
            topic.publish(epoch(5, e, 50.0 + f64::from(e))).unwrap();
        }
        topic
            .publish(Event::ModelCompleted(ModelCompleted {
                model_id: 5,
                generation: 0,
                genome: genome.clone(),
                arch_summary: "3 phases".into(),
                flops: 500.0,
                objective_names: Vec::new(),
                objective_values: Vec::new(),
                final_fitness: 53.0,
                predicted_fitness: None,
                terminated_early: false,
                failed: false,
                attempts: 2,
                train_seconds: 6.0,
            }))
            .unwrap();

        // Model 6: exhausts its retries; the partial trail survives.
        for e in 1..=2u32 {
            topic.publish(epoch(6, e, 40.0 + f64::from(e))).unwrap();
        }
        topic
            .publish(Event::TrainingFailed(crate::events::TrainingFailed {
                model_id: 6,
                generation: 0,
                epoch_reached: 2,
                attempt: 3,
                will_retry: false,
            }))
            .unwrap();
        topic
            .publish(Event::ModelCompleted(ModelCompleted {
                model_id: 6,
                generation: 0,
                genome,
                arch_summary: "3 phases".into(),
                flops: 500.0,
                objective_names: Vec::new(),
                objective_values: Vec::new(),
                final_fitness: 0.0,
                predicted_fitness: None,
                terminated_early: false,
                failed: true,
                attempts: 3,
                train_seconds: 4.0,
            }))
            .unwrap();
        topic.close();

        let records = recorder.join().unwrap();
        assert_eq!(records.len(), 2);
        let recovered = &records[0];
        assert_eq!(recovered.model_id, 5);
        assert_eq!(recovered.epochs.len(), 3, "dead attempt's trail dropped");
        assert_eq!(recovered.termination, Terminated::Completed);
        assert_eq!(recovered.attempts, 2);
        let failed = &records[1];
        assert_eq!(failed.model_id, 6);
        assert_eq!(failed.epochs.len(), 2, "partial trail kept");
        assert_eq!(failed.termination, Terminated::Failed);
        assert!(failed.failed());
        assert_eq!(failed.attempts, 3);
    }

    #[test]
    fn aggregator_counts_every_event_kind() {
        let topic: Topic<Event> = Topic::new("a4nn");
        let aggregator = RunStatsAggregator::spawn(&topic);
        for e in 1..=4u32 {
            topic.publish(epoch(1, e, 60.0)).unwrap();
        }
        topic
            .publish(Event::GenerationScheduled(GenerationScheduled {
                generation: 0,
                assignments: vec![GpuSlot {
                    model_id: 1,
                    gpu: 1,
                    start_s: 0.0,
                    end_s: 8.0,
                }],
            }))
            .unwrap();
        topic.close();
        let stats = aggregator.join().unwrap();
        assert_eq!(stats.epochs_observed, 4);
        assert_eq!(stats.generations_scheduled, 1);
        assert_eq!(stats.gpu_busy_seconds, vec![0.0, 8.0]);
        assert_eq!(stats.subscriber.delivered, 5);
        assert_eq!(stats.subscriber.dropped, 0);
    }
}
