//! # a4nn-bus — in-situ event bus and streaming services
//!
//! The paper's workflow couples its tasks — concurrent trainers, the
//! PENGUIN prediction engine, and the lineage/data-commons recorder —
//! in situ, over memory instead of the filesystem (§2.2, built on
//! Wilkins/LowFive in the reference implementation). This crate is
//! that coupling layer as an explicit subsystem:
//!
//! - [`topic`] — a typed MPMC publish–subscribe [`Topic`] over bounded
//!   per-subscriber queues with selectable backpressure ([`Policy`]:
//!   lossless blocking, lossy drop-oldest with exact drop accounting,
//!   or unbounded for audit streams), per-subscriber delivery/lag
//!   counters, and graceful close-and-drain shutdown;
//! - [`events`] — the [`Event`] vocabulary flowing between services:
//!   per-epoch fitness, engine verdicts, termination advice, model
//!   completions, and GPU schedules;
//! - [`services`] — the streaming services: [`PredictionEngineService`]
//!   (per-model PENGUIN engines answering epochs with verdicts),
//!   [`LineageRecorderService`] (folds the stream into the same record
//!   trails the direct call path produces), and [`RunStatsAggregator`]
//!   (run-level counters and per-GPU utilization).
//!
//! Determinism contract: driving a search through the bus produces
//! record trails identical to the direct in-process call path, because
//! engine state is per-model, verdicts are joined back by
//! `(model_id, epoch)`, and the recorder orders records by model id.

#![warn(clippy::redundant_clone)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod events;
pub mod services;
pub mod topic;

pub use events::{
    EngineVerdict, EpochCompleted, Event, GenerationScheduled, GpuSlot, ModelCompleted,
    TerminationAdvised, TrainingFailed,
};
pub use services::{
    BusRunStats, EngineFaultHook, LineageRecorderService, PredictionEngineService,
    RunStatsAggregator, ENGINE_INBOX_CAPACITY,
};
pub use topic::{
    Policy, PublishError, RecvError, SubscriberStats, Subscription, Topic, TryRecvError,
};
