//! The generic typed publish–subscribe core.
//!
//! A [`Topic<T>`] fans every published event out to all live
//! subscriptions, each of which owns a private FIFO queue with its own
//! backpressure [`Policy`]. Publishers never observe each other;
//! subscribers never share queues. Per-publisher FIFO order is
//! guaranteed: a subscriber sees any one publisher's events in the
//! order that publisher sent them, because each `publish` appends to
//! every queue before returning.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Backpressure behaviour of one subscription's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Bounded queue; publishers block while it is full (lossless,
    /// propagates backpressure upstream).
    Block {
        /// Maximum queued events.
        capacity: usize,
    },
    /// Bounded queue; a publish into a full queue evicts the oldest
    /// undelivered event and counts it in
    /// [`SubscriberStats::dropped`] (lossy, publisher never blocks).
    DropOldest {
        /// Maximum queued events.
        capacity: usize,
    },
    /// Unbounded queue (for audit/lineage streams that must be both
    /// lossless and non-blocking).
    Unbounded,
}

/// Error returned by [`Topic::publish`] after [`Topic::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishError;

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("publishing on a closed topic")
    }
}

impl std::error::Error for PublishError {}

/// Error returned by [`Subscription::recv`]: the topic closed and the
/// queue has drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on a closed, drained topic")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Subscription::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue currently empty but the topic is open.
    Empty,
    /// Topic closed and queue drained.
    Closed,
}

/// Counters exposed by [`Subscription::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriberStats {
    /// Events that passed the filter and entered the queue (including
    /// ones later evicted by `DropOldest`).
    pub enqueued: u64,
    /// Events the subscriber consumed.
    pub delivered: u64,
    /// Events evicted by the `DropOldest` policy.
    pub dropped: u64,
    /// Events currently waiting in the queue.
    pub lag: u64,
}

type Filter<T> = Box<dyn Fn(&T) -> bool + Send + Sync>;

struct SubQueue<T> {
    queue: Mutex<VecDeque<T>>,
    readable: Condvar,
    writable: Condvar,
    policy: Policy,
    filter: Option<Filter<T>>,
    enqueued: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    detached: AtomicBool,
}

struct TopicCore<T> {
    name: String,
    subscribers: Mutex<Vec<Arc<SubQueue<T>>>>,
    closed: AtomicBool,
    published: AtomicU64,
}

/// A named, typed event stream with fan-out to every subscription.
pub struct Topic<T> {
    core: Arc<TopicCore<T>>,
}

impl<T> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Topic {
            core: self.core.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Topic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topic")
            .field("name", &self.core.name)
            .field("published", &self.core.published.load(Ordering::SeqCst))
            .field("closed", &self.core.closed.load(Ordering::SeqCst))
            .finish()
    }
}

impl<T: Clone> Topic<T> {
    /// Create an open topic.
    pub fn new(name: impl Into<String>) -> Self {
        Topic {
            core: Arc::new(TopicCore {
                name: name.into(),
                subscribers: Mutex::new(Vec::new()),
                closed: AtomicBool::new(false),
                published: AtomicU64::new(0),
            }),
        }
    }

    /// The topic's name.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Events published so far.
    pub fn published(&self) -> u64 {
        self.core.published.load(Ordering::SeqCst)
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.core.closed.load(Ordering::SeqCst)
    }

    /// Subscribe with `policy`; receives every subsequent event.
    pub fn subscribe(&self, policy: Policy) -> Subscription<T> {
        self.attach(policy, None)
    }

    /// Subscribe with a predicate; only events for which `filter`
    /// returns `true` enter this subscription's queue (evaluated at
    /// publish time, on the publisher's thread).
    pub fn subscribe_filtered<F>(&self, policy: Policy, filter: F) -> Subscription<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        self.attach(policy, Some(Box::new(filter)))
    }

    fn attach(&self, policy: Policy, filter: Option<Filter<T>>) -> Subscription<T> {
        if let Policy::Block { capacity } | Policy::DropOldest { capacity } = policy {
            assert!(capacity > 0, "bounded queue needs capacity > 0");
        }
        let sub = Arc::new(SubQueue {
            queue: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            policy,
            filter,
            enqueued: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            detached: AtomicBool::new(false),
        });
        self.core.subscribers.lock().push(sub.clone());
        Subscription {
            sub,
            topic: self.core.clone(),
        }
    }

    /// Deliver `event` to every matching live subscription. Returns the
    /// number of queues it entered. Blocks while any `Block`-policy
    /// queue is full.
    pub fn publish(&self, event: T) -> Result<usize, PublishError> {
        if self.is_closed() {
            return Err(PublishError);
        }
        // Snapshot the subscriber list so delivery does not hold the
        // topic lock (subscribers added mid-publish see later events).
        let subs: Vec<Arc<SubQueue<T>>> = self.core.subscribers.lock().clone();
        let mut receivers = 0;
        for sub in &subs {
            if sub.detached.load(Ordering::SeqCst) {
                continue;
            }
            if let Some(filter) = &sub.filter {
                if !filter(&event) {
                    continue;
                }
            }
            let mut queue = sub.queue.lock();
            match sub.policy {
                Policy::Block { capacity } => {
                    while queue.len() >= capacity
                        && !sub.detached.load(Ordering::SeqCst)
                        && !self.is_closed()
                    {
                        sub.writable.wait(&mut queue);
                    }
                    if sub.detached.load(Ordering::SeqCst) {
                        continue;
                    }
                }
                Policy::DropOldest { capacity } => {
                    if queue.len() >= capacity {
                        queue.pop_front();
                        sub.dropped.fetch_add(1, Ordering::SeqCst);
                    }
                }
                Policy::Unbounded => {}
            }
            queue.push_back(event.clone());
            sub.enqueued.fetch_add(1, Ordering::SeqCst);
            receivers += 1;
            sub.readable.notify_one();
        }
        self.core.published.fetch_add(1, Ordering::SeqCst);
        Ok(receivers)
    }

    /// Close the topic: publishes start failing, blocked publishers and
    /// receivers wake, and receivers drain whatever is already queued
    /// before seeing [`RecvError`].
    pub fn close(&self) {
        self.core.closed.store(true, Ordering::SeqCst);
        for sub in self.core.subscribers.lock().iter() {
            let _queue = sub.queue.lock();
            sub.readable.notify_all();
            sub.writable.notify_all();
        }
    }
}

/// A private FIFO view of one topic.
pub struct Subscription<T> {
    sub: Arc<SubQueue<T>>,
    topic: Arc<TopicCore<T>>,
}

impl<T> Subscription<T> {
    /// Block until an event arrives; `Err` once the topic is closed and
    /// this queue has drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.sub.queue.lock();
        loop {
            if let Some(event) = queue.pop_front() {
                self.sub.delivered.fetch_add(1, Ordering::SeqCst);
                self.sub.writable.notify_one();
                return Ok(event);
            }
            if self.topic.closed.load(Ordering::SeqCst) {
                return Err(RecvError);
            }
            self.sub.readable.wait(&mut queue);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.sub.queue.lock();
        if let Some(event) = queue.pop_front() {
            self.sub.delivered.fetch_add(1, Ordering::SeqCst);
            self.sub.writable.notify_one();
            return Ok(event);
        }
        if self.topic.closed.load(Ordering::SeqCst) {
            Err(TryRecvError::Closed)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// [`recv`](Self::recv) with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.sub.queue.lock();
        loop {
            if let Some(event) = queue.pop_front() {
                self.sub.delivered.fetch_add(1, Ordering::SeqCst);
                self.sub.writable.notify_one();
                return Ok(event);
            }
            if self.topic.closed.load(Ordering::SeqCst) {
                return Err(TryRecvError::Closed);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TryRecvError::Empty);
            }
            let timed_out = self.sub.readable.wait_for(&mut queue, deadline - now);
            if timed_out && queue.is_empty() {
                return Err(TryRecvError::Empty);
            }
        }
    }

    /// Blocking iterator over events until close-and-drain.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }

    /// Current queue depth (events published but not yet consumed).
    pub fn lag(&self) -> usize {
        self.sub.queue.lock().len()
    }

    /// Delivery counters for this subscription.
    pub fn stats(&self) -> SubscriberStats {
        SubscriberStats {
            enqueued: self.sub.enqueued.load(Ordering::SeqCst),
            delivered: self.sub.delivered.load(Ordering::SeqCst),
            dropped: self.sub.dropped.load(Ordering::SeqCst),
            lag: self.lag() as u64,
        }
    }
}

impl<T> Drop for Subscription<T> {
    fn drop(&mut self) {
        self.sub.detached.store(true, Ordering::SeqCst);
        let _queue = self.sub.queue.lock();
        // Unblock publishers waiting for space in this queue.
        self.sub.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_reaches_every_subscriber() {
        let topic: Topic<u32> = Topic::new("t");
        let a = topic.subscribe(Policy::Unbounded);
        let b = topic.subscribe(Policy::Block { capacity: 8 });
        for i in 0..5 {
            assert_eq!(topic.publish(i).unwrap(), 2);
        }
        topic.close();
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(topic.published(), 5);
    }

    #[test]
    fn filtered_subscription_sees_matching_events_only() {
        let topic: Topic<u32> = Topic::new("t");
        let odd = topic.subscribe_filtered(Policy::Unbounded, |v| v % 2 == 1);
        for i in 0..6 {
            topic.publish(i).unwrap();
        }
        topic.close();
        assert_eq!(odd.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        let stats = odd.stats();
        assert_eq!(stats.enqueued, 3);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn drop_oldest_evicts_and_accounts_exactly() {
        let topic: Topic<u32> = Topic::new("t");
        let sub = topic.subscribe(Policy::DropOldest { capacity: 3 });
        for i in 0..10 {
            topic.publish(i).unwrap();
        }
        topic.close();
        assert_eq!(sub.iter().collect::<Vec<_>>(), vec![7, 8, 9]);
        let stats = sub.stats();
        assert_eq!(stats.enqueued, 10);
        assert_eq!(stats.dropped, 7);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.enqueued, stats.delivered + stats.dropped + stats.lag);
    }

    #[test]
    fn block_policy_applies_backpressure() {
        let topic: Topic<u32> = Topic::new("t");
        let sub = topic.subscribe(Policy::Block { capacity: 2 });
        let publisher = std::thread::spawn(move || {
            for i in 0..50 {
                topic.publish(i).unwrap();
            }
        });
        let mut seen = Vec::new();
        while seen.len() < 50 {
            seen.push(sub.recv().unwrap());
            assert!(sub.lag() <= 2, "queue exceeded its bound");
        }
        publisher.join().unwrap();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn close_wakes_blocked_receiver_and_fails_publish() {
        let topic: Topic<u32> = Topic::new("t");
        let sub = topic.subscribe(Policy::Unbounded);
        let waiter = std::thread::spawn(move || sub.recv());
        std::thread::sleep(Duration::from_millis(20));
        topic.close();
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
        assert_eq!(topic.publish(1), Err(PublishError));
    }

    #[test]
    fn dropped_subscription_unblocks_publisher() {
        let topic: Topic<u32> = Topic::new("t");
        let sub = topic.subscribe(Policy::Block { capacity: 1 });
        topic.publish(0).unwrap();
        let publisher = std::thread::spawn(move || {
            // Blocks on the full queue until the subscription drops.
            topic.publish(1).unwrap();
            topic.publish(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(sub);
        publisher.join().unwrap();
    }

    #[test]
    fn recv_timeout_returns_empty_then_event() {
        let topic: Topic<u32> = Topic::new("t");
        let sub = topic.subscribe(Policy::Unbounded);
        assert_eq!(
            sub.recv_timeout(Duration::from_millis(10)),
            Err(TryRecvError::Empty)
        );
        topic.publish(9).unwrap();
        assert_eq!(sub.recv_timeout(Duration::from_millis(10)), Ok(9));
        assert_eq!(sub.try_recv(), Err(TryRecvError::Empty));
        topic.close();
        assert_eq!(sub.try_recv(), Err(TryRecvError::Closed));
    }
}
