//! The event vocabulary of the A4NN bus.
//!
//! One [`Event`] enum flows on a single `Topic<Event>`; services select
//! the variants they care about with
//! [`subscribe_filtered`](crate::Topic::subscribe_filtered). The
//! variants mirror the dataflow of the paper's workflow: trainers emit
//! per-epoch fitness upstream, the prediction engine answers with
//! verdicts, and the lineage recorder consumes everything.

use a4nn_genome::Genome;

/// A trainer finished one epoch of one model (Algorithm 1's per-epoch
/// fitness hand-off to the engine).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochCompleted {
    /// Globally unique model id within the run.
    pub model_id: u64,
    /// Generation the model belongs to.
    pub generation: usize,
    /// 1-based epoch number.
    pub epoch: u32,
    /// Training accuracy (%) after this epoch.
    pub train_acc: f64,
    /// Validation accuracy (%) — the fitness the engine consumes.
    pub val_acc: f64,
    /// Seconds the epoch took.
    pub duration_s: f64,
}

/// The prediction engine's response to one [`EpochCompleted`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineVerdict {
    /// Model the verdict is for.
    pub model_id: u64,
    /// Epoch the verdict follows.
    pub epoch: u32,
    /// Latest extrapolated fitness at `e_pred`, if a fit succeeded.
    pub prediction: Option<f64>,
    /// `Some(predicted_fitness)` when the analyzer converged and
    /// training should terminate early.
    pub converged: Option<f64>,
    /// Running total of engine wall time for this model, in seconds.
    pub engine_seconds: f64,
    /// Running total of engine interactions for this model.
    pub engine_interactions: u64,
    /// The engine crashed for this model and will answer no further
    /// epochs; stats above are frozen at the crash point. The trainer
    /// must degrade to run-to-completion training.
    pub retired: bool,
}

/// The engine advises terminating one model's training early (§2.2's
/// in-situ early-termination signal).
#[derive(Debug, Clone, PartialEq)]
pub struct TerminationAdvised {
    /// Model to stop training.
    pub model_id: u64,
    /// Epoch at which convergence was detected.
    pub epoch: u32,
    /// Predicted final fitness the NAS should use.
    pub fitness: f64,
}

/// A model's training finished (to completion or early) and its record
/// trail can be closed.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCompleted {
    /// Model id.
    pub model_id: u64,
    /// Generation the model belongs to.
    pub generation: usize,
    /// The genome that was trained.
    pub genome: Genome,
    /// Human-readable architecture summary.
    pub arch_summary: String,
    /// Estimated forward FLOPs.
    pub flops: f64,
    /// Names of the objective set the run searches under, in objective
    /// order. Empty when published by a pre-registry producer.
    pub objective_names: Vec<String>,
    /// The minimized objective values, aligned with `objective_names`.
    pub objective_values: Vec<f64>,
    /// Fitness the NAS will use for selection.
    pub final_fitness: f64,
    /// The engine's converged prediction, if training stopped early.
    pub predicted_fitness: Option<f64>,
    /// Whether training was terminated early.
    pub terminated_early: bool,
    /// Whether the model exhausted its retry budget; the record trail
    /// carries whatever partial history the final attempt produced.
    pub failed: bool,
    /// Training attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Total training seconds for this model.
    pub train_seconds: f64,
}

/// One training attempt of one model died (a trainer panic was caught
/// by the pool). Published *before* the panic resumes so every
/// subscriber sees the failure ahead of any retry's events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingFailed {
    /// Model whose attempt failed.
    pub model_id: u64,
    /// Generation the model belongs to.
    pub generation: usize,
    /// Last epoch the attempt finished before dying (0 = died before
    /// completing any).
    pub epoch_reached: u32,
    /// 1-based attempt number that failed.
    pub attempt: u32,
    /// Whether the retry policy grants another attempt.
    pub will_retry: bool,
}

/// One model's slot in a generation's discrete-event GPU schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSlot {
    /// Model the slot belongs to.
    pub model_id: u64,
    /// Virtual GPU the model trained on.
    pub gpu: usize,
    /// Slot start, seconds from generation start.
    pub start_s: f64,
    /// Slot end, seconds from generation start.
    pub end_s: f64,
}

/// A generation's GPU schedule was computed.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationScheduled {
    /// Generation index.
    pub generation: usize,
    /// One slot per model in the generation.
    pub assignments: Vec<GpuSlot>,
}

/// Everything that flows on the A4NN bus.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A trainer finished an epoch.
    EpochCompleted(EpochCompleted),
    /// The prediction engine answered an epoch.
    EngineVerdict(EngineVerdict),
    /// The engine advised early termination.
    TerminationAdvised(TerminationAdvised),
    /// A model's training finished.
    ModelCompleted(ModelCompleted),
    /// One training attempt of a model died.
    TrainingFailed(TrainingFailed),
    /// A generation's GPU schedule is available.
    GenerationScheduled(GenerationScheduled),
}

impl Event {
    /// The model id the event concerns, when it concerns exactly one.
    pub fn model_id(&self) -> Option<u64> {
        match self {
            Event::EpochCompleted(e) => Some(e.model_id),
            Event::EngineVerdict(e) => Some(e.model_id),
            Event::TerminationAdvised(e) => Some(e.model_id),
            Event::ModelCompleted(e) => Some(e.model_id),
            Event::TrainingFailed(e) => Some(e.model_id),
            Event::GenerationScheduled(_) => None,
        }
    }

    /// Short kind label, for stats and debug output.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EpochCompleted(_) => "epoch-completed",
            Event::EngineVerdict(_) => "engine-verdict",
            Event::TerminationAdvised(_) => "termination-advised",
            Event::ModelCompleted(_) => "model-completed",
            Event::TrainingFailed(_) => "training-failed",
            Event::GenerationScheduled(_) => "generation-scheduled",
        }
    }
}
