//! Property tests for the bus core: per-publisher FIFO under every
//! capacity/policy combination, and exact drop accounting for the
//! `DropOldest` policy.

use a4nn_bus::{Policy, Topic};
use proptest::prelude::*;

fn policy(idx: usize, capacity: usize) -> Policy {
    match idx {
        0 => Policy::Block { capacity },
        1 => Policy::DropOldest { capacity },
        _ => Policy::Unbounded,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn per_publisher_fifo_under_every_policy(
        publishers in 1usize..=4,
        per_publisher in 1usize..=24,
        policy_idx in 0usize..3,
        capacity in 1usize..=8,
    ) {
        let topic: Topic<(usize, usize)> = Topic::new("prop");
        let sub = topic.subscribe(policy(policy_idx, capacity));
        // Concurrent consumer, so `Block` publishers always drain.
        let consumer = std::thread::spawn(move || {
            let mut seen: Vec<(usize, usize)> = Vec::new();
            while let Ok(event) = sub.recv() {
                seen.push(event);
            }
            (seen, sub.stats())
        });
        let handles: Vec<_> = (0..publishers)
            .map(|p| {
                let topic = topic.clone();
                std::thread::spawn(move || {
                    for s in 0..per_publisher {
                        topic.publish((p, s)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        topic.close();
        let (seen, stats) = consumer.join().unwrap();

        // Any one publisher's events arrive in publish order (possibly
        // with gaps under DropOldest, never reordered).
        let mut last: Vec<Option<usize>> = vec![None; publishers];
        for (p, s) in &seen {
            if let Some(prev) = last[*p] {
                prop_assert!(*s > prev, "publisher {} reordered: {} after {}", p, s, prev);
            }
            last[*p] = Some(*s);
        }
        // Lossless policies deliver every event.
        if policy_idx != 1 {
            prop_assert_eq!(seen.len(), publishers * per_publisher);
            prop_assert_eq!(stats.dropped, 0);
        }
        // The accounting invariant holds for every policy.
        prop_assert_eq!(stats.enqueued, stats.delivered + stats.dropped + stats.lag);
        prop_assert_eq!(stats.delivered, seen.len() as u64);
        prop_assert_eq!(stats.lag, 0);
    }

    #[test]
    fn drop_oldest_accounting_is_exact(
        published in 0usize..64,
        capacity in 1usize..=16,
    ) {
        let topic: Topic<usize> = Topic::new("prop");
        let sub = topic.subscribe(Policy::DropOldest { capacity });
        for i in 0..published {
            topic.publish(i).unwrap();
        }
        // Before consuming: dropped + lag exactly account everything
        // published into the queue.
        let stats = sub.stats();
        prop_assert_eq!(stats.enqueued, published as u64);
        prop_assert_eq!(stats.dropped, published.saturating_sub(capacity) as u64);
        prop_assert_eq!(stats.lag, published.min(capacity) as u64);

        topic.close();
        let survivors: Vec<usize> = sub.iter().collect();
        // Survivors are exactly the newest `capacity` events, in order.
        let expected: Vec<usize> = (published.saturating_sub(capacity)..published).collect();
        prop_assert_eq!(survivors, expected);
        let done = sub.stats();
        prop_assert_eq!(done.delivered + done.dropped, done.enqueued);
        prop_assert_eq!(done.lag, 0);
    }
}
